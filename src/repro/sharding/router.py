"""Shard-local query execution with message-shaped cross-shard escalation.

:class:`ShardRouter` is a reachability *evaluator* (the duck-typed seam
:class:`~repro.reachability.engine.ReachabilityEngine` accepts instead of a
backend name): it answers reach / audience / access / bulk shapes over a
:class:`~repro.sharding.shard.ShardedGraph` by running the PR 3 owner-bitset
product sweep **inside each shard** and escalating across shards only
through explicit messages.

Execution model — bulk-synchronous product sweep
------------------------------------------------
Each shard keeps a persistent :class:`_ShardSweepState`: the flat
``seen``/``pending`` mask tables of
:func:`~repro.reachability.compiled_search._multisource_mask_sweep`, made
*resumable*.  A round seeds the pending messages, runs every touched shard's
worklist to exhaustion, then exports the mask deltas that accumulated on
**ghost** slots as ``(user, state, mask)`` messages routed to the ghost's
home shard.  Masks only ever grow, so the rounds reach exactly the fixpoint
of the global product walk — the differential harness in
``tests/property/test_shard_equivalence.py`` holds the router to the
unsharded four-backend answers on every query shape.  The message seam is
deliberately value-shaped (user ids, automaton state ids, int masks): the
multiprocess pool in :mod:`repro.sharding.multiproc` ships the same triples
over pipes, and a remote transport could ship them over a network.

Point queries add a pruning tier: when the local walk spills over a
boundary edge and the expression is forward-only, the
:class:`~repro.sharding.summary.BoundarySummary` refutes most dead-end
escalations with bitset probes before any other shard is touched.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Hashable, List, Optional, Sequence, Set, Tuple

from repro.exceptions import NodeNotFoundError
from repro.graph.compiled import CompiledGraph, compile_graph, register_derived_policy
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.compiled_search import (
    SWEEP_DIRECTIONS,
    CompiledAutomaton,
    SweepPlan,
    _hoisted_state_moves,
    _mask_bits,
    plan_audience_sweep,
    reversed_expression,
)
from repro.reachability.result import EvaluationResult
from repro.reliability.guard import active_guard
from repro.sharding.shard import GHOST_ATTR, ShardedGraph
from repro.sharding.summary import BoundarySummary

__all__ = ["ShardRouter", "ShardSweepPlan"]

_GHOSTS_KEY = "sharding.ghosts"
# Ghost membership only changes with node/edge structure, never with
# attribute-only deltas — the same survival rule as the line index.
register_derived_policy(_GHOSTS_KEY, "structural")


def ghost_indices(snapshot: CompiledGraph) -> List[int]:
    """Ghost node indices of one shard snapshot (cached on the snapshot)."""
    cached = snapshot.derived.get(_GHOSTS_KEY)
    if cached is None:
        dead = snapshot.dead_slots
        cached = [
            node
            for node in range(snapshot.number_of_nodes())
            if node not in dead and snapshot.attributes_of(node).get(GHOST_ATTR)
        ]
        snapshot.derived[_GHOSTS_KEY] = cached
    return cached


@dataclass(frozen=True)
class ShardSweepPlan(SweepPlan):
    """A :class:`SweepPlan` annotated with the sharded execution's shape.

    ``partial_shards`` is the per-shard partial provenance: the shards whose
    worklists were cut off (or whose messages went undelivered) when an
    active :class:`~repro.reliability.guard.QueryGuard` ran out of budget —
    empty on complete sweeps.
    """

    shards: int = 0
    rounds: int = 0
    messages: int = 0
    escalated: bool = False
    partial_shards: Tuple[int, ...] = ()


class _ShardSweepState:
    """Resumable multi-source mask sweep over one shard snapshot.

    The loop body is :func:`~repro.reachability.compiled_search.
    _multisource_mask_sweep` verbatim; the differences are that seeds may
    arrive *between* runs (messages seed arbitrary automaton states, not
    just the start state) and that the worklist survives a guard trip, so a
    later round — or a differential test reading the tables — sees exactly
    the monotone state reached so far.
    """

    __slots__ = (
        "snapshot",
        "automaton",
        "num_states",
        "seen",
        "pending",
        "queue",
        "head",
        "chain_memo",
        "state_moves",
        "static_closure",
        "ghosts",
        "sent",
        "tripped",
        "scanned",
    )

    def __init__(
        self,
        snapshot: CompiledGraph,
        automaton: CompiledAutomaton,
        ghosts: Sequence[int],
    ) -> None:
        self.snapshot = snapshot
        self.automaton = automaton
        self.num_states = automaton.num_states
        size = snapshot.number_of_nodes() * automaton.num_states
        self.seen: List[int] = [0] * size
        self.pending: List[int] = [0] * size
        self.queue: List[int] = []
        self.head = 0
        self.chain_memo: Dict[int, Tuple[int, ...]] = {}
        self.state_moves = _hoisted_state_moves(snapshot, automaton)
        self.static_closure = automaton.static_closures()
        self.ghosts = list(ghosts)
        self.sent: Dict[int, int] = {}
        self.tripped = False
        self.scanned = 0

    def seed(self, node: int, state: int, mask: int) -> None:
        """Inject owner bits at ``(node, state)``, with spontaneous advances."""
        num_states = self.num_states
        for closed in self.automaton.closure(state, node):
            key = node * num_states + closed
            add = mask & ~self.seen[key]
            if add:
                self.seen[key] |= add
                if not self.pending[key]:
                    self.queue.append(key)
                self.pending[key] |= add

    def has_work(self) -> bool:
        return self.head < len(self.queue)

    def run(self) -> bool:
        """Drain the worklist; ``False`` when a guard budget cut it short."""
        guard = active_guard()
        queue = self.queue
        seen = self.seen
        pending = self.pending
        num_states = self.num_states
        state_moves = self.state_moves
        static_closure = self.static_closure
        closure = self.automaton.closure
        chain_memo = self.chain_memo
        scanned = 0
        charged = 0
        while self.head < len(queue):
            if guard is not None:
                if not guard.spend(1 + scanned - charged):
                    self.tripped = True
                    self.scanned += scanned
                    return False
                charged = scanned
            key = queue[self.head]
            self.head += 1
            delta = pending[key]
            pending[key] = 0
            if not delta:
                continue
            node, state = divmod(key, num_states)
            moves = state_moves[state]
            if not moves:
                continue
            next_state = state + 1
            next_static = static_closure[next_state]
            for offsets, targets in moves:
                row = targets[offsets[node]:offsets[node + 1]]
                scanned += len(row)
                for neighbor in row:
                    base = neighbor * num_states
                    if next_static is not None:
                        chain = next_static
                    else:
                        chain = chain_memo.get(base + next_state)
                        if chain is None:
                            chain = chain_memo[base + next_state] = tuple(
                                closure(next_state, neighbor)
                            )
                    for closed in chain:
                        neighbor_key = base + closed
                        previous = seen[neighbor_key]
                        if previous:
                            add = delta & ~previous
                            if not add:
                                continue
                            seen[neighbor_key] = previous | add
                        else:
                            add = delta
                            seen[neighbor_key] = delta
                        if not pending[neighbor_key]:
                            queue.append(neighbor_key)
                        pending[neighbor_key] |= add
        self.queue = []
        self.head = 0
        self.scanned += scanned
        return True

    def export(self) -> List[Tuple[Hashable, int, int]]:
        """New ghost-slot mask bits since the last export, as messages."""
        messages: List[Tuple[Hashable, int, int]] = []
        num_states = self.num_states
        user_of = self.snapshot.node_ids
        seen = self.seen
        sent = self.sent
        for node in self.ghosts:
            base = node * num_states
            for state in range(num_states):
                mask = seen[base + state]
                if not mask:
                    continue
                delta = mask & ~sent.get(base + state, 0)
                if delta:
                    sent[base + state] = mask
                    messages.append((user_of[node], state, delta))
        return messages


class ShardRouter:
    """Evaluator routing queries shard-locally, escalating via messages."""

    name = "sharded"

    def __init__(self, sharded: ShardedGraph, *, summary_limit: int = 4096) -> None:
        self.sharded = sharded
        self.summary_limit = summary_limit
        self._summary: Optional[BoundarySummary] = None
        self._summary_epoch: Optional[int] = None
        self._parse_cache: Dict[str, PathExpression] = {}
        #: Observability, surfaced through ``GraphService.statistics()``.
        self.queries = 0
        self.point_queries = 0
        self.sweeps = 0
        self.local_queries = 0
        self.escalated_queries = 0
        self.summary_prunes = 0
        self.messages_sent = 0
        self.rounds_run = 0

    # --------------------------------------------------------------- helpers

    def refresh(self) -> None:
        """Bring the shards (and drop stale summaries) up to the live epoch."""
        self.sharded.refresh()
        if self._summary_epoch != self.sharded.graph.epoch:
            self._summary = None

    def _parse(self, expression) -> PathExpression:
        if isinstance(expression, PathExpression):
            return expression
        parsed = self._parse_cache.get(expression)
        if parsed is None:
            parsed = self._parse_cache[expression] = PathExpression.parse(expression)
        return parsed

    def _summary_obj(self) -> BoundarySummary:
        epoch = self.sharded.graph.epoch
        if self._summary is None or self._summary_epoch != epoch:
            self._summary = BoundarySummary(self.sharded, limit=self.summary_limit)
            self._summary_epoch = epoch
        return self._summary

    @property
    def escalation_rate(self) -> float:
        """Lifetime share of routed queries that crossed a shard boundary."""
        return self.escalated_queries / max(1, self.queries)

    def _home_of(self, user: Hashable) -> int:
        if not self.sharded.graph.has_user(user):
            raise NodeNotFoundError(f"user {user!r} is not in the graph")
        return self.sharded.shard_of(user)

    def _state_factory(self, expression: PathExpression):
        """Per-shard lazily created sweep states over one automaton."""
        snapshots = self.sharded.snapshots()
        states: Dict[int, _ShardSweepState] = {}

        def state_for(shard: int) -> _ShardSweepState:
            state = states.get(shard)
            if state is None:
                snapshot = snapshots[shard]
                automaton = CompiledAutomaton(expression, snapshot)
                state = states[shard] = _ShardSweepState(
                    snapshot, automaton, ghost_indices(snapshot)
                )
            return state

        return states, state_for

    def _run_rounds(
        self,
        states: Dict[int, _ShardSweepState],
        state_for,
        messages: Dict[int, List[Tuple[Hashable, int, int]]],
        *,
        stop_check=None,
    ) -> Tuple[int, int, bool, bool]:
        """Drive BSP rounds to quiescence (or budget/early exit).

        Returns ``(rounds, message_count, escalated, tripped)``.
        ``messages`` maps shard -> ``(user, state, mask)`` seeds; a ``state``
        of ``-1`` means the automaton's start state (closure applied at the
        seed node either way).  ``stop_check`` short-circuits between rounds
        (point queries stop as soon as the target accepts).
        """
        rounds = 0
        message_count = 0
        escalated = False
        tripped = False
        while messages and not tripped:
            rounds += 1
            for shard in sorted(messages):
                state = state_for(shard)
                snapshot = state.snapshot
                start_id = state.automaton.start_id
                for user, state_id, mask in messages[shard]:
                    node = snapshot.index_of(user)
                    state.seed(node, start_id if state_id < 0 else state_id, mask)
            outgoing: Dict[int, List[Tuple[Hashable, int, int]]] = {}
            for shard in sorted(messages):
                state = states[shard]
                if not state.run():
                    tripped = True
                    break
                for user, state_id, mask in state.export():
                    home = self.sharded.shard_of(user)
                    outgoing.setdefault(home, []).append((user, state_id, mask))
                    message_count += 1
            if outgoing:
                escalated = True
            messages = outgoing
            if stop_check is not None and stop_check():
                break
        self.rounds_run += rounds
        self.messages_sent += message_count
        return rounds, message_count, escalated, tripped

    @staticmethod
    def _partial_shards(states: Dict[int, _ShardSweepState]) -> Tuple[int, ...]:
        return tuple(
            sorted(
                shard
                for shard, state in states.items()
                if state.tripped or state.has_work()
            )
        )

    # ------------------------------------------------------------ point form

    def evaluate(
        self,
        source: Hashable,
        target: Hashable,
        expression,
        *,
        collect_witness: bool = False,
    ) -> EvaluationResult:
        """Point reachability: shard-local first, summary-pruned escalation.

        Witness collection is not offered by the sharded walk (masks carry
        no parent links); ``witness`` is always ``None``, exactly like the
        multi-source sweep the audiences ride on.
        """
        expression = self._parse(expression)
        self.refresh()
        self.queries += 1
        self.point_queries += 1
        home = self._home_of(source)
        self._home_of(target)  # validate the target before any sweep work
        states, state_for = self._state_factory(expression)

        def accepted() -> bool:
            for state in states.values():
                index = state.snapshot.node_index.get(target)
                if index is not None and (
                    state.seen[index * state.num_states + state.automaton.accept_id] & 1
                ):
                    return True
            return False

        # Round 0: the owner's shard alone.
        state = state_for(home)
        state.seed(state.snapshot.index_of(source), state.automaton.start_id, 1)
        state.run()
        result = EvaluationResult(reachable=False, backend=self.name)
        if accepted():
            self.local_queries += 1
            result.reachable = True
            result.count("shards_touched", len(states))
            return result
        exports = state.export()
        if not exports:
            self.local_queries += 1
            result.count("shards_touched", len(states))
            return result
        forward_only = all(
            step.direction is Direction.OUTGOING for step in expression
        )
        if forward_only:
            exits = {user for user, _state, _mask in exports}
            if not self._summary_obj().may_reach(exits, target):
                # No directed path from any boundary exit to the target at
                # all — the constrained walk certainly has none either.
                self.summary_prunes += 1
                self.local_queries += 1
                result.count("shards_touched", len(states))
                result.count("summary_pruned", 1)
                return result
        self.escalated_queries += 1
        messages: Dict[int, List[Tuple[Hashable, int, int]]] = {}
        for user, state_id, mask in exports:
            messages.setdefault(self.sharded.shard_of(user), []).append(
                (user, state_id, mask)
            )
        rounds, message_count, _escalated, _tripped = self._run_rounds(
            states, state_for, messages, stop_check=accepted
        )
        result.reachable = accepted()
        result.count("shards_touched", len(states))
        result.count("rounds", rounds + 1)
        result.count("messages", message_count + len(exports))
        return result

    def is_reachable(self, source, target, expression) -> bool:
        return self.evaluate(source, target, expression).reachable

    def find_targets(self, source: Hashable, expression) -> Set[Hashable]:
        """Every user reachable from ``source`` (single-owner audience)."""
        audiences, _plan = self.sweep_targets_many([source], expression)
        return audiences[source]

    # ------------------------------------------------------------ bulk forms

    def sweep_targets_many(
        self,
        sources,
        expression,
        *,
        direction: str = "auto",
    ) -> Tuple[Dict[Hashable, Set[Hashable]], ShardSweepPlan]:
        """Materialize many owners' audiences via per-shard mask sweeps."""
        if direction not in SWEEP_DIRECTIONS:
            raise ValueError(
                f"unknown sweep direction {direction!r}; expected one of "
                f"{SWEEP_DIRECTIONS}"
            )
        expression = self._parse(expression)
        self.refresh()
        sources = list(dict.fromkeys(sources))
        self.queries += 1
        self.sweeps += 1
        base_plan = plan_audience_sweep(
            compile_graph(self.sharded.graph),
            expression,
            len(sources),
            direction=direction,
        )
        if base_plan.direction == "reverse":
            audiences, states, rounds, messages, escalated, tripped = (
                self._reverse_sweep(sources, expression)
            )
        else:
            # "batched" has no per-owner analogue across shards; it
            # collapses into the forward mask sweep (identical answers).
            audiences, states, rounds, messages, escalated, tripped = (
                self._forward_sweep(sources, expression)
            )
        if escalated:
            self.escalated_queries += 1
        else:
            self.local_queries += 1
        partial = self._partial_shards(states) if tripped else ()
        plan = ShardSweepPlan(
            direction=base_plan.direction,
            forced=base_plan.forced,
            owners=len(sources),
            forward_cost=base_plan.forward_cost,
            reverse_cost=base_plan.reverse_cost,
            reason=(
                f"{base_plan.reason}; sharded across "
                f"{self.sharded.shard_count} shards"
            ),
            shards=len(states),
            rounds=rounds,
            messages=messages,
            escalated=escalated,
            partial_shards=partial,
        )
        return audiences, plan

    def _forward_sweep(self, sources, expression: PathExpression):
        states, state_for = self._state_factory(expression)
        seeds: Dict[int, List[Tuple[Hashable, int, int]]] = {}
        for bit, user in enumerate(sources):
            seeds.setdefault(self._home_of(user), []).append((user, -1, 1 << bit))
        rounds, messages, escalated, tripped = self._run_rounds(
            states, state_for, seeds
        )
        audiences: Dict[Hashable, Set[Hashable]] = {
            source: set() for source in sources
        }
        bits_of: Dict[int, List[int]] = {}
        for state in states.values():
            snapshot = state.snapshot
            num_states = state.num_states
            accept_id = state.automaton.accept_id
            ghosts = set(state.ghosts)
            user_of = snapshot.node_ids
            seen = state.seen
            for node in range(snapshot.number_of_nodes()):
                if node in ghosts:
                    continue  # the home shard owns the canonical accept mask
                mask = seen[node * num_states + accept_id]
                if not mask:
                    continue
                bits = bits_of.get(mask)
                if bits is None:
                    bits = bits_of[mask] = _mask_bits(mask)
                user = user_of[node]
                for bit in bits:
                    audiences[sources[bit]].add(user)
        return audiences, states, rounds, messages, escalated, tripped

    def _reverse_sweep(self, sources, expression: PathExpression):
        """Global-bit reverse sweep: every shard seeds its owned vertex set.

        Bit ``g`` stands for the user with :attr:`ShardedGraph.global_ids`
        id ``g``; seeds are filtered by the last forward step's attribute
        conditions per shard (the constraint the reversed expression cannot
        carry), exactly mirroring the unsharded ``_sweep_reverse``.
        """
        for user in sources:
            self._home_of(user)  # validate before any work
        reverse = reversed_expression(expression)
        states, state_for = self._state_factory(reverse)
        snapshots = self.sharded.snapshots()
        steps = tuple(expression)
        global_ids = self.sharded.global_ids
        seeds: Dict[int, List[Tuple[Hashable, int, int]]] = {}
        for shard in range(self.sharded.shard_count):
            snapshot = snapshots[shard]
            if not snapshot.number_of_live_nodes():
                continue
            holds = None
            if steps[-1].conditions:
                forward_automaton = CompiledAutomaton(expression, snapshot)
                last_index = len(steps) - 1
                holds = lambda node: forward_automaton.condition_holds(  # noqa: E731
                    last_index, node
                )
            ghosts = set(ghost_indices(snapshot))
            dead = snapshot.dead_slots
            shard_seeds: List[Tuple[Hashable, int, int]] = []
            user_of = snapshot.node_ids
            for node in range(snapshot.number_of_nodes()):
                if node in dead or node in ghosts:
                    continue
                if holds is not None and not holds(node):
                    continue
                shard_seeds.append((user_of[node], -1, 1 << global_ids[user_of[node]]))
            if shard_seeds:
                seeds[shard] = shard_seeds
        rounds, messages, escalated, tripped = self._run_rounds(
            states, state_for, seeds
        )
        user_by_gid = {gid: user for user, gid in global_ids.items()}
        audiences: Dict[Hashable, Set[Hashable]] = {}
        for owner in sources:
            home = self.sharded.shard_of(owner)
            state = states.get(home)
            members: Set[Hashable] = set()
            if state is not None:
                index = state.snapshot.node_index.get(owner)
                if index is not None:
                    mask = state.seen[
                        index * state.num_states + state.automaton.accept_id
                    ]
                    members = {user_by_gid[bit] for bit in _mask_bits(mask)}
            audiences[owner] = members
        return audiences, states, rounds, messages, escalated, tripped

    # ----------------------------------------------------------------- stats

    def statistics(self) -> Dict[str, float]:
        """Router counters (all floats, ``shard_``-prefixed by the facade)."""
        return {
            "count": float(self.sharded.shard_count),
            "queries": float(self.queries),
            "point_queries": float(self.point_queries),
            "sweeps": float(self.sweeps),
            "local_queries": float(self.local_queries),
            "escalated_queries": float(self.escalated_queries),
            "summary_prunes": float(self.summary_prunes),
            "messages": float(self.messages_sent),
            "rounds": float(self.rounds_run),
            "boundary_edges": float(self.sharded.boundary_edge_count),
            "refresh_deltas": float(self.sharded.refresh_outcomes["delta"]),
            "refresh_rebuilds": float(self.sharded.refresh_outcomes["rebuild"]),
        }

    def __repr__(self) -> str:
        return f"<ShardRouter over {self.sharded!r}>"
