"""Community-partitioned shards of one :class:`SocialGraph`.

:class:`ShardedGraph` materializes one *mirror* ``SocialGraph`` per shard:
the shard's owned users, every edge between them, plus — for each boundary
edge — a **ghost** copy of the remote endpoint (tagged with
:data:`GHOST_ATTR` so the tag travels with persisted snapshots) and the
boundary edge itself, duplicated into *both* endpoint shards.  Each mirror
compiles through the ordinary :func:`~repro.graph.compiled.compile_graph`
path, so per-shard snapshots inherit everything the single-graph stack
already has: epoch-stamped caching, O(|delta|) patching under churn,
tombstoned removals, and :class:`~repro.graph.snapshot.SnapshotStore`
persistence for read-only mmap serving by worker processes.

Maintenance rides the source graph's mutation journal: ``refresh()`` replays
``graph.mutations_since(...)`` into exactly the affected mirrors (each
mirror has its *own* journal, so its compiled snapshot patches itself in
O(|delta|)); an uncovered journal gap falls back to a full mirror rebuild
with **stable shard assignments** — a user removed and re-added lands on the
shard it lived on before, so churn bursts cannot silently migrate data.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Dict, List, Optional, Sequence

from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph, UserId
from repro.sharding.partitioner import CommunityPartitioner, Partition

__all__ = ["GHOST_ATTR", "ShardedGraph"]

#: Attribute marking a mirror node as a ghost (remote endpoint of a boundary
#: edge).  It lives in the node's ordinary attribute dict so persisted shard
#: snapshots carry it and a worker process can tell owned from ghost nodes
#: without the parent's partition table.
GHOST_ATTR = "__shard_ghost__"

_MANIFEST_NAME = "manifest.json"


class ShardedGraph:
    """One source graph split into per-community shard mirrors."""

    def __init__(
        self,
        graph: SocialGraph,
        *,
        shards: int,
        seed: int = 7,
        partition: Optional[Partition] = None,
    ) -> None:
        if shards < 1:
            raise ValueError(f"shards must be >= 1, got {shards}")
        self.graph = graph
        self.shard_count = shards
        self.seed = seed
        snapshot = compile_graph(graph)
        if partition is None:
            partition = CommunityPartitioner(shards, seed=seed).partition(snapshot)
        self.partition = partition
        #: Assignment history: survives ``remove_user`` so a re-added user
        #: returns to its former shard (stable ids across churn).
        self._shard_of: Dict[UserId, int] = dict(partition.shard_of)
        #: Dense global node ids for reverse (audience-bit) sweeps; grows
        #: monotonically, survives removals like ``_shard_of`` does.
        self.global_ids: Dict[UserId, int] = {}
        self.mirrors: List[SocialGraph] = []
        self._owned_counts: List[int] = []
        self.boundary_edge_count = 0
        self.refresh_outcomes = {"noop": 0, "delta": 0, "rebuild": 0}
        self._build_mirrors()
        self._seen_epoch = graph.epoch

    # ------------------------------------------------------------ inspection

    def shard_of(self, user: UserId) -> int:
        """The shard owning ``user`` (raises ``KeyError`` if never assigned)."""
        return self._shard_of[user]

    def snapshots(self) -> List[CompiledGraph]:
        """Per-shard compiled snapshots (cached/patched via each mirror)."""
        return [compile_graph(mirror) for mirror in self.mirrors]

    def owned_users(self, shard: int) -> List[UserId]:
        """The (live) users owned by one shard, in mirror insertion order."""
        mirror = self.mirrors[shard]
        return [
            user
            for user in mirror.users()
            if not mirror.raw_attributes(user).get(GHOST_ATTR)
        ]

    def boundary_users(self) -> List[UserId]:
        """Every user incident to a cross-shard edge, deterministically ordered."""
        seen = {}
        for mirror in self.mirrors:
            for user in mirror.users():
                if mirror.raw_attributes(user).get(GHOST_ATTR):
                    seen[user] = True
        return sorted(seen, key=str)

    # ---------------------------------------------------------- construction

    def _build_mirrors(self) -> None:
        graph = self.graph
        self.mirrors = [
            SocialGraph(name=f"{graph.name or 'graph'}-shard{index}")
            for index in range(self.shard_count)
        ]
        self._owned_counts = [0] * self.shard_count
        self.boundary_edge_count = 0
        for user in graph.users():
            if user not in self._shard_of:
                self._assign_new(user)
            if user not in self.global_ids:
                self.global_ids[user] = len(self.global_ids)
            shard = self._shard_of[user]
            self.mirrors[shard].add_user(user, **graph.raw_attributes(user))
            self._owned_counts[shard] += 1
        for rel in graph.relationships():
            source_shard = self._shard_of[rel.source]
            target_shard = self._shard_of[rel.target]
            if source_shard == target_shard:
                self.mirrors[source_shard].add_relationship(
                    rel.source, rel.target, rel.label, **dict(rel.attributes)
                )
            else:
                self._ensure_ghost(source_shard, rel.target)
                self._ensure_ghost(target_shard, rel.source)
                for shard in (source_shard, target_shard):
                    self.mirrors[shard].add_relationship(
                        rel.source, rel.target, rel.label, **dict(rel.attributes)
                    )
                self.boundary_edge_count += 1

    def _ensure_ghost(self, shard: int, user: UserId) -> None:
        mirror = self.mirrors[shard]
        if mirror.has_user(user):
            return
        attrs = (
            dict(self.graph.raw_attributes(user))
            if self.graph.has_user(user)
            else {}
        )
        attrs[GHOST_ATTR] = True
        mirror.add_user(user, **attrs)

    def _assign_new(self, user: UserId) -> int:
        """Deterministically place a user the partitioner never saw.

        Majority shard among already-assigned neighbours (ties -> lowest
        shard id), falling back to the least-loaded shard.  Incremental by
        design: re-partitioning on every ``add_user`` would thrash shard
        ownership under churn.
        """
        votes: Dict[int, int] = {}
        if self.graph.has_user(user):
            for neighbor in self.graph.neighbors(user):
                shard = self._shard_of.get(neighbor)
                if shard is not None:
                    votes[shard] = votes.get(shard, 0) + 1
        if votes:
            shard = min(votes, key=lambda s: (-votes[s], s))
        else:
            shard = self._owned_counts.index(min(self._owned_counts))
        self._shard_of[user] = shard
        return shard

    # ------------------------------------------------------------- refresh

    def refresh(self) -> str:
        """Bring every mirror up to date with the source graph.

        Returns ``"noop"`` (epoch unchanged), ``"delta"`` (journal replayed
        into the affected mirrors — their compiled snapshots then patch in
        O(|delta|)) or ``"rebuild"`` (journal gap uncovered: mirrors rebuilt
        from scratch under the *same* shard assignments).
        """
        epoch = self.graph.epoch
        if epoch == self._seen_epoch:
            self.refresh_outcomes["noop"] += 1
            return "noop"
        ops = self.graph.mutations_since(self._seen_epoch)
        if ops is None:
            self._build_mirrors()
            outcome = "rebuild"
        else:
            for op in ops:
                self._apply(op)
            outcome = "delta"
        self._seen_epoch = epoch
        self.refresh_outcomes[outcome] += 1
        return outcome

    def _apply(self, op: Sequence) -> None:
        kind = op[0]
        if kind == "add_user":
            self._apply_add_user(op[1])
        elif kind == "remove_user":
            user = op[1]
            for mirror in self.mirrors:
                if mirror.has_user(user):
                    mirror.remove_user(user)
            shard = self._shard_of.get(user)
            if shard is not None and self._owned_counts[shard] > 0:
                self._owned_counts[shard] -= 1
        elif kind == "update_user":
            user = op[1]
            for shard, mirror in enumerate(self.mirrors):
                if mirror.has_user(user):
                    ghost = bool(mirror.raw_attributes(user).get(GHOST_ATTR))
                    self._sync_attrs(mirror, user, ghost)
        elif kind == "add_edge":
            self._apply_add_edge(op[1], op[2], op[3])
        elif kind == "remove_edge":
            source, target, label = op[1], op[2], op[3]
            copies = 0
            for mirror in self.mirrors:
                if mirror.has_relationship(source, target, label):
                    mirror.remove_relationship(source, target, label)
                    copies += 1
            if copies > 1:
                self.boundary_edge_count -= 1

    def _apply_add_user(self, user: UserId) -> None:
        shard = self._shard_of.get(user)
        if shard is None:
            shard = self._assign_new(user)
        if user not in self.global_ids:
            self.global_ids[user] = len(self.global_ids)
        mirror = self.mirrors[shard]
        attrs = (
            dict(self.graph.raw_attributes(user))
            if self.graph.has_user(user)
            else {}
        )
        if mirror.has_user(user):  # pragma: no cover - defensive
            self._sync_attrs(mirror, user, False)
        else:
            mirror.add_user(user, **attrs)
        self._owned_counts[shard] += 1

    def _apply_add_edge(self, source: UserId, target: UserId, label: str) -> None:
        # The journal is chronological: both endpoints were added (and are
        # still present in the mirrors) when their edge op replays, even if
        # a later op in the same burst removes them again.
        source_shard = self._shard_of[source]
        target_shard = self._shard_of[target]
        attrs = (
            dict(self.graph.get_relationship(source, target, label).attributes)
            if self.graph.has_relationship(source, target, label)
            else {}
        )
        if source_shard == target_shard:
            self._mirror_add_edge(self.mirrors[source_shard], source, target, label, attrs)
        else:
            self._ensure_ghost(source_shard, target)
            self._ensure_ghost(target_shard, source)
            for shard in (source_shard, target_shard):
                self._mirror_add_edge(self.mirrors[shard], source, target, label, attrs)
            self.boundary_edge_count += 1

    @staticmethod
    def _mirror_add_edge(
        mirror: SocialGraph, source: UserId, target: UserId, label: str, attrs: Dict
    ) -> None:
        if not mirror.has_relationship(source, target, label):
            mirror.add_relationship(source, target, label, **attrs)

    def _sync_attrs(self, mirror: SocialGraph, user: UserId, ghost: bool) -> None:
        """Make one mirror's attribute dict exactly match the source graph's.

        Merging alone would leak deleted keys into the mirrors (a condition
        on a deleted attribute would then diverge from the unsharded
        answer), so stale keys are removed through the mirror's live mapping
        — every write journals on the mirror, keeping its compiled snapshot
        on the O(|delta|) path.
        """
        fresh = (
            dict(self.graph.raw_attributes(user))
            if self.graph.has_user(user)
            else {}
        )
        if ghost:
            fresh[GHOST_ATTR] = True
        live = mirror.attributes(user)
        for key in [key for key in live if key not in fresh]:
            del live[key]
        for key, value in fresh.items():
            if key not in live or live[key] != value:
                live[key] = value

    # ---------------------------------------------------------- persistence

    def save(self, directory) -> Dict:
        """Persist every shard via its own :class:`SnapshotStore` + manifest.

        The manifest records the shard count, seed, source epoch, per-shard
        snapshot stems and the owner map, so a pool of worker processes can
        mmap the shards read-only and route messages without recomputing the
        partition.  Returns the manifest document.
        """
        directory = Path(directory)
        directory.mkdir(parents=True, exist_ok=True)
        stems = []
        for index, mirror in enumerate(self.mirrors):
            stem = directory / f"shard{index}"
            SnapshotStore(stem).save(compile_graph(mirror))
            stems.append(stem.name)
        manifest = {
            "format": 1,
            "shards": self.shard_count,
            "seed": self.seed,
            "epoch": self.graph.epoch,
            "stems": stems,
            "owners": sorted(
                ([str(user), shard] for user, shard in self._shard_of.items()
                 if self.graph.has_user(user)),
            ),
            "boundary_edges": self.boundary_edge_count,
        }
        (directory / _MANIFEST_NAME).write_text(json.dumps(manifest, indent=0))
        return manifest

    @staticmethod
    def read_manifest(directory) -> Dict:
        """Load the manifest written by :meth:`save`."""
        return json.loads((Path(directory) / _MANIFEST_NAME).read_text())

    def __repr__(self) -> str:
        return (
            f"<ShardedGraph {self.shard_count} shards over {self.graph!r}, "
            f"{self.boundary_edge_count} boundary edges>"
        )
