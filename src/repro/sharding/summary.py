"""Per-shard boundary-node reachability summaries for cross-shard pruning.

A point query escalates across shards only when its local product walk
spills over a boundary edge.  Most of those spills are dead ends: the walk
crossed into a neighbouring community that never leads back to the target.
:class:`BoundarySummary` prices that check down to bitset probes by reusing
the interned cover machinery from :mod:`repro.reachability.interned`:

1. **Per shard**: Tarjan-condense the shard's merged forward CSR
   (:func:`~repro.reachability.interned.tarjan_scc_dense`) and take the
   condensation's descendant bitsets
   (:func:`~repro.reachability.interned.dag_reachability_bitsets`) —
   ``in_shard_reach`` is then two array reads and one bit test.
2. **Globally**: build the *boundary digraph* — nodes are the boundary
   users (every ghost, everywhere), edges are (a) the boundary edges
   themselves and (b) one summary edge per boundary pair ``(a, b)`` that
   co-resides in some shard with ``in_shard_reach(a, b)`` — condense it and
   label the condensation with a greedy 2-hop cover
   (:func:`~repro.reachability.interned.two_hop_cover_dense`).

The summaries answer **plain directed reachability**, a necessary condition
for any *forward-only* path expression: if no boundary exit of the local
walk summary-reaches the target, the escalation is refuted without touching
another shard.  Mixed-direction expressions never consult the summary (the
walk may traverse edges backwards, which the forward summary does not
model) and escalate unconditionally.

Completeness of the boundary digraph: any global path between boundary
nodes decomposes at its boundary-node visits; each segment between
consecutive boundary visits runs through non-boundary interior nodes, whose
every edge is internal to their one home shard — so the segment co-resides
in that shard and is captured by a summary edge (or is itself a boundary
edge).  The 2-hop cover over the condensation is exact, hence so is
:meth:`BoundarySummary.boundary_reaches`.
"""

from __future__ import annotations

from array import array
from typing import Dict, List, Optional, Set, Tuple

from repro.graph.compiled import CompiledGraph
from repro.graph.social_graph import UserId
from repro.reachability.interned import (
    dag_reachability_bitsets,
    tarjan_scc_dense,
    two_hop_cover_dense,
)

__all__ = ["BoundarySummary"]


def _condense_csr(
    count: int, offsets, targets
) -> Tuple[array, int, array, array, List[int]]:
    """Tarjan + condensation CSR + topological order of one dense digraph."""
    comp_of, comp_count = tarjan_scc_dense(count, offsets, targets)
    pairs: Set[Tuple[int, int]] = set()
    for node in range(count):
        source = comp_of[node]
        for position in range(offsets[node], offsets[node + 1]):
            target = comp_of[targets[position]]
            if source != target:
                pairs.add((source, target))
    c_offsets = array("l", [0]) * (comp_count + 1)
    for source, _target in pairs:
        c_offsets[source + 1] += 1
    for index in range(comp_count):
        c_offsets[index + 1] += c_offsets[index]
    c_targets = array("l", [0]) * len(pairs)
    cursor = array("l", c_offsets[:-1])
    for source, target in sorted(pairs):
        c_targets[cursor[source]] = target
        cursor[source] += 1
    # Emission order is reverse-topological: descending id is topological.
    topo = list(range(comp_count - 1, -1, -1))
    return comp_of, comp_count, c_offsets, c_targets, topo


class _ShardReach:
    """Plain forward reachability inside one shard snapshot."""

    __slots__ = ("comp_of", "position", "descendants")

    def __init__(self, snapshot: CompiledGraph) -> None:
        offsets, targets = snapshot.forward(None)
        count = snapshot.number_of_nodes()
        comp_of, comp_count, c_offsets, c_targets, topo = _condense_csr(
            count, offsets, targets
        )
        position, descendants, _ancestors = dag_reachability_bitsets(
            comp_count, c_offsets, c_targets, topo
        )
        self.comp_of = comp_of
        self.position = position
        self.descendants = descendants

    def reaches(self, source: int, target: int) -> bool:
        source_comp = self.comp_of[source]
        target_comp = self.comp_of[target]
        if source_comp == target_comp:
            return True
        return bool(
            self.descendants[source_comp] >> self.position[target_comp] & 1
        )


class BoundarySummary:
    """2-hop labelled reachability over the global boundary-node digraph.

    ``limit`` caps the boundary-node count the summary will summarize: the
    per-shard pair enumeration is quadratic in a shard's boundary size, so
    past the cap the summary reports itself unavailable (:attr:`available`)
    and every crossing escalates — correct, just unpruned.
    """

    def __init__(self, sharded, *, limit: int = 4096) -> None:
        self.available = True
        self._sharded = sharded
        self._entry_cache: Dict[UserId, Tuple[UserId, ...]] = {}
        snapshots = sharded.snapshots()
        boundary = sharded.boundary_users()
        if len(boundary) > limit:
            self.available = False
            self._gid: Dict[UserId, int] = {}
            self._shard_reach: List[Optional[_ShardReach]] = [None] * len(snapshots)
            return
        self._gid = {user: index for index, user in enumerate(boundary)}
        self._shard_reach = [
            _ShardReach(snapshot) if snapshot.number_of_nodes() else None
            for snapshot in snapshots
        ]
        # Boundary digraph: boundary edges + per-shard summarized pairs.
        count = len(boundary)
        pairs: Set[Tuple[int, int]] = set()
        for shard, snapshot in enumerate(snapshots):
            reach = self._shard_reach[shard]
            if reach is None:
                continue
            present = [
                (self._gid[user], snapshot.index_of(user))
                for user in boundary
                if snapshot.node_index.get(user) is not None
            ]
            for gid_a, node_a in present:
                for gid_b, node_b in present:
                    if gid_a != gid_b and reach.reaches(node_a, node_b):
                        pairs.add((gid_a, gid_b))
        offsets = array("l", [0]) * (count + 1)
        for source, _target in pairs:
            offsets[source + 1] += 1
        for index in range(count):
            offsets[index + 1] += offsets[index]
        targets = array("l", [0]) * len(pairs)
        cursor = array("l", offsets[:-1])
        for source, target in sorted(pairs):
            targets[cursor[source]] = target
            cursor[source] += 1
        comp_of, comp_count, c_offsets, c_targets, topo = _condense_csr(
            count, offsets, targets
        )
        lin, lout, _centers = two_hop_cover_dense(
            comp_count, c_offsets, c_targets, topo
        )
        self._comp_of = comp_of
        self._lin = lin
        self._lout = lout

    # ------------------------------------------------------------------ api

    def boundary_reaches(self, source: UserId, target: UserId) -> bool:
        """Plain reachability between two boundary users (exact)."""
        source_comp = self._comp_of[self._gid[source]]
        target_comp = self._comp_of[self._gid[target]]
        if source_comp == target_comp:
            return True
        return bool(self._lout[source_comp] & self._lin[target_comp])

    def _entries_for(self, target: UserId) -> Tuple[UserId, ...]:
        """Boundary users of the target's home shard that in-shard-reach it."""
        cached = self._entry_cache.get(target)
        if cached is not None:
            return cached
        shard = self._sharded.shard_of(target)
        snapshot = self._sharded.snapshots()[shard]
        reach = self._shard_reach[shard]
        target_index = snapshot.index_of(target)
        entries = tuple(
            user
            for user in self._gid
            if snapshot.node_index.get(user) is not None
            and reach.reaches(snapshot.index_of(user), target_index)
        )
        self._entry_cache[target] = entries
        return entries

    def may_reach(self, exits, target: UserId) -> bool:
        """Could a walk leaving through ``exits`` (boundary users) reach ``target``?

        ``True`` is a *maybe* (the walk still has to satisfy the path
        expression); ``False`` is definitive for forward-only expressions:
        no directed path exists from any exit to the target at all.
        """
        if not self.available:
            return True
        entries = self._entries_for(target)
        if not entries:
            return False
        entry_set = set(entries)
        for exit_user in exits:
            if exit_user in entry_set:
                return True
            for entry in entries:
                if self.boundary_reaches(exit_user, entry):
                    return True
        return False

    def __repr__(self) -> str:
        flag = "available" if self.available else "over-limit"
        return f"<BoundarySummary {len(self._gid)} boundary users, {flag}>"
