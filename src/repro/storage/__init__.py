"""In-memory relational substrate.

Plays the role of the relational DBMS in which the paper stores its
per-label base tables and the B+-tree cluster index (Section 3.3):

* :class:`~repro.storage.table.Table` / :class:`~repro.storage.table.Schema`
  — column-typed tables with key and secondary hash indexes,
* :class:`~repro.storage.btree.BPlusTree` — the ordered container backing the
  cluster-based join index of Figure 7,
* :mod:`~repro.storage.joins` — hash / nested-loop joins and the
  *reachability join* operator,
* :class:`~repro.storage.catalog.Catalog` — a named registry of tables.
"""

from repro.storage.btree import BPlusTree
from repro.storage.catalog import Catalog
from repro.storage.joins import hash_join, nested_loop_join, reachability_join, reachability_join_rows
from repro.storage.table import Column, Row, Schema, Table

__all__ = [
    "BPlusTree",
    "Catalog",
    "Column",
    "Row",
    "Schema",
    "Table",
    "hash_join",
    "nested_loop_join",
    "reachability_join",
    "reachability_join_rows",
]
