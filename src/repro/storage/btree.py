"""A B+-tree keyed container.

The cluster-based join index of the paper (Figure 7) "is a B+-tree, where
non-leaf nodes are centers.  Each non-leaf node w_i holds two clusters U_wi
and V_wi".  This module provides the B+-tree the index is stored in: an
order-``m`` tree with all values kept in linked leaves, supporting point
lookups, ordered iteration and range scans.

Keys must be mutually comparable (the join index uses string center ids).
Deletion removes the entry from its leaf without rebalancing — the index is
rebuilt, never shrunk, which matches how the paper's (static) index is used —
but the tree remains correct for lookups after deletions.
"""

from __future__ import annotations

from bisect import bisect_left, bisect_right, insort
from typing import Any, Generic, Iterator, List, Optional, Tuple, TypeVar

__all__ = ["BPlusTree"]

K = TypeVar("K")
V = TypeVar("V")


class _Node:
    """Internal or leaf node of the B+-tree."""

    __slots__ = ("keys", "children", "values", "next_leaf", "is_leaf")

    def __init__(self, is_leaf: bool) -> None:
        self.is_leaf = is_leaf
        self.keys: List[Any] = []
        self.children: List["_Node"] = []   # internal nodes only
        self.values: List[Any] = []         # leaf nodes only
        self.next_leaf: Optional["_Node"] = None


class BPlusTree(Generic[K, V]):
    """An order-``m`` B+-tree mapping keys to values.

    Parameters
    ----------
    order:
        Maximum number of children of an internal node (>= 3).  Leaves hold at
        most ``order - 1`` entries.
    """

    def __init__(self, order: int = 16) -> None:
        if order < 3:
            raise ValueError("B+-tree order must be at least 3")
        self._order = order
        self._root: _Node = _Node(is_leaf=True)
        self._size = 0
        self._height = 1

    # -------------------------------------------------------------- metrics

    @property
    def order(self) -> int:
        """The configured order (maximum fan-out) of the tree."""
        return self._order

    @property
    def height(self) -> int:
        """The current height (number of levels, leaves included)."""
        return self._height

    def __len__(self) -> int:
        return self._size

    def __bool__(self) -> bool:
        return self._size > 0

    # --------------------------------------------------------------- insert

    def insert(self, key: K, value: V) -> None:
        """Insert ``key`` -> ``value``; an existing key has its value replaced."""
        split = self._insert(self._root, key, value)
        if split is not None:
            separator, right = split
            new_root = _Node(is_leaf=False)
            new_root.keys = [separator]
            new_root.children = [self._root, right]
            self._root = new_root
            self._height += 1

    def _insert(self, node: _Node, key: K, value: V) -> Optional[Tuple[Any, _Node]]:
        if node.is_leaf:
            index = bisect_left(node.keys, key)
            if index < len(node.keys) and node.keys[index] == key:
                node.values[index] = value
                return None
            node.keys.insert(index, key)
            node.values.insert(index, value)
            self._size += 1
            if len(node.keys) < self._order:
                return None
            return self._split_leaf(node)
        index = bisect_right(node.keys, key)
        split = self._insert(node.children[index], key, value)
        if split is None:
            return None
        separator, right = split
        node.keys.insert(index, separator)
        node.children.insert(index + 1, right)
        if len(node.children) <= self._order:
            return None
        return self._split_internal(node)

    def _split_leaf(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        right = _Node(is_leaf=True)
        right.keys = node.keys[middle:]
        right.values = node.values[middle:]
        node.keys = node.keys[:middle]
        node.values = node.values[:middle]
        right.next_leaf = node.next_leaf
        node.next_leaf = right
        return right.keys[0], right

    def _split_internal(self, node: _Node) -> Tuple[Any, _Node]:
        middle = len(node.keys) // 2
        separator = node.keys[middle]
        right = _Node(is_leaf=False)
        right.keys = node.keys[middle + 1:]
        right.children = node.children[middle + 1:]
        node.keys = node.keys[:middle]
        node.children = node.children[:middle + 1]
        return separator, right

    # --------------------------------------------------------------- lookup

    def _find_leaf(self, key: K) -> _Node:
        node = self._root
        while not node.is_leaf:
            index = bisect_right(node.keys, key)
            node = node.children[index]
        return node

    def get(self, key: K, default: Optional[V] = None) -> Optional[V]:
        """Return the value stored for ``key``, or ``default``."""
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            return leaf.values[index]
        return default

    def __getitem__(self, key: K) -> V:
        sentinel = object()
        value = self.get(key, sentinel)  # type: ignore[arg-type]
        if value is sentinel:
            raise KeyError(key)
        return value  # type: ignore[return-value]

    def __contains__(self, key: K) -> bool:
        sentinel = object()
        return self.get(key, sentinel) is not sentinel  # type: ignore[arg-type]

    def __setitem__(self, key: K, value: V) -> None:
        self.insert(key, value)

    # --------------------------------------------------------------- delete

    def delete(self, key: K) -> bool:
        """Remove ``key`` if present; returns whether a removal happened.

        The leaf is not rebalanced (see module docstring); lookups, iteration
        and range scans remain correct.
        """
        leaf = self._find_leaf(key)
        index = bisect_left(leaf.keys, key)
        if index < len(leaf.keys) and leaf.keys[index] == key:
            leaf.keys.pop(index)
            leaf.values.pop(index)
            self._size -= 1
            return True
        return False

    # ------------------------------------------------------------ iteration

    def _first_leaf(self) -> _Node:
        node = self._root
        while not node.is_leaf:
            node = node.children[0]
        return node

    def items(self) -> Iterator[Tuple[K, V]]:
        """Iterate over (key, value) pairs in ascending key order."""
        leaf: Optional[_Node] = self._first_leaf()
        while leaf is not None:
            yield from zip(leaf.keys, leaf.values)
            leaf = leaf.next_leaf

    def keys(self) -> Iterator[K]:
        """Iterate over keys in ascending order."""
        return (key for key, _value in self.items())

    def values(self) -> Iterator[V]:
        """Iterate over values in ascending key order."""
        return (value for _key, value in self.items())

    def __iter__(self) -> Iterator[K]:
        return self.keys()

    def range(self, low: Optional[K] = None, high: Optional[K] = None) -> Iterator[Tuple[K, V]]:
        """Iterate over (key, value) pairs with ``low <= key <= high``.

        ``None`` bounds are open-ended.
        """
        if low is None:
            leaf: Optional[_Node] = self._first_leaf()
            start = 0
        else:
            leaf = self._find_leaf(low)
            start = bisect_left(leaf.keys, low)
        while leaf is not None:
            for index in range(start, len(leaf.keys)):
                key = leaf.keys[index]
                if high is not None and key > high:
                    return
                yield key, leaf.values[index]
            leaf = leaf.next_leaf
            start = 0

    # -------------------------------------------------------------- display

    def node_count(self) -> Tuple[int, int]:
        """Return ``(internal_nodes, leaf_nodes)`` — used by index-size benchmarks."""
        internal = 0
        leaves = 0
        stack = [self._root]
        while stack:
            node = stack.pop()
            if node.is_leaf:
                leaves += 1
            else:
                internal += 1
                stack.extend(node.children)
        return internal, leaves

    def __repr__(self) -> str:
        internal, leaves = self.node_count()
        return (
            f"<BPlusTree order={self._order} size={self._size} height={self._height} "
            f"internal={internal} leaves={leaves}>"
        )
