"""A named collection of tables (a minimal database catalog).

The join-index machinery creates one base table per relationship type
(``T_friend``, ``T_colleague``, ``T_parent`` in the paper's example); the
catalog gives them a home, supports lookup by name, and reports aggregate
storage statistics for the index-size benchmarks.
"""

from __future__ import annotations

from typing import Dict, Iterator, List, Optional, Tuple

from repro.exceptions import StorageError, TableNotFoundError
from repro.storage.table import Schema, Table

__all__ = ["Catalog"]


class Catalog:
    """A registry of named :class:`~repro.storage.table.Table` objects."""

    def __init__(self, name: str = "catalog") -> None:
        self.name = name
        self._tables: Dict[str, Table] = {}

    def create_table(self, name: str, schema: Schema, key: Optional[str] = None) -> Table:
        """Create and register a new table; the name must be unused."""
        if name in self._tables:
            raise StorageError(f"table {name!r} already exists in catalog {self.name!r}")
        table = Table(name, schema, key=key)
        self._tables[name] = table
        return table

    def register(self, table: Table) -> None:
        """Register an existing table under its own name."""
        if table.name in self._tables:
            raise StorageError(f"table {table.name!r} already exists in catalog {self.name!r}")
        self._tables[table.name] = table

    def drop_table(self, name: str) -> None:
        """Remove a table from the catalog."""
        if name not in self._tables:
            raise TableNotFoundError(name)
        del self._tables[name]

    def table(self, name: str) -> Table:
        """Return the table registered under ``name``."""
        try:
            return self._tables[name]
        except KeyError:
            raise TableNotFoundError(name) from None

    def has_table(self, name: str) -> bool:
        """Return whether a table with this name exists."""
        return name in self._tables

    def table_names(self) -> List[str]:
        """Return the registered table names, sorted."""
        return sorted(self._tables)

    def __contains__(self, name: str) -> bool:
        return name in self._tables

    def __iter__(self) -> Iterator[Table]:
        return iter(self._tables.values())

    def __len__(self) -> int:
        return len(self._tables)

    def total_rows(self) -> int:
        """Return the total number of rows across all tables."""
        return sum(len(table) for table in self._tables.values())

    def statistics(self) -> Dict[str, Tuple[int, Tuple[str, ...]]]:
        """Return ``{table name: (row count, column names)}`` for reporting."""
        return {
            name: (len(table), table.schema.column_names)
            for name, table in sorted(self._tables.items())
        }

    def __repr__(self) -> str:
        return f"<Catalog {self.name!r}: {len(self._tables)} tables, {self.total_rows()} rows>"
