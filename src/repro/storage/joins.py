"""Join operators over :class:`~repro.storage.table.Table`.

Provides the classic equality joins (nested-loop and hash) plus the paper's
*reachability join*: a theta-join where a pair ``(x, y)`` qualifies when
``Lout(x) ∩ Lin(y) ≠ ∅`` under a 2-hop reachability labeling (Section 3.3).
The reachability join is the building block the cluster-index evaluator uses
to process each ``label_i ⤳ label_{i+1}`` condition of a line query.
"""

from __future__ import annotations

from typing import Any, Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Set, Tuple

from repro.storage.table import Row, Table

__all__ = [
    "nested_loop_join",
    "hash_join",
    "reachability_join",
    "reachability_join_rows",
]

JoinedRow = Dict[str, Any]


def _merge(left: Mapping[str, Any], right: Mapping[str, Any], right_prefix: str) -> JoinedRow:
    merged: JoinedRow = dict(left)
    for key, value in right.items():
        merged[key if key not in merged else f"{right_prefix}{key}"] = value
    return merged


def nested_loop_join(
    left: Iterable[Mapping[str, Any]],
    right: Sequence[Mapping[str, Any]],
    predicate: Callable[[Mapping[str, Any], Mapping[str, Any]], bool],
    *,
    right_prefix: str = "right_",
) -> List[JoinedRow]:
    """Theta-join: return merged rows for every pair satisfying ``predicate``.

    Quadratic — used as the reference implementation and for small inputs.
    Right-side columns that collide with left-side ones are prefixed.
    """
    result: List[JoinedRow] = []
    for left_row in left:
        for right_row in right:
            if predicate(left_row, right_row):
                result.append(_merge(left_row, right_row, right_prefix))
    return result


def hash_join(
    left: Iterable[Mapping[str, Any]],
    right: Iterable[Mapping[str, Any]],
    left_column: str,
    right_column: str,
    *,
    right_prefix: str = "right_",
) -> List[JoinedRow]:
    """Equality join on ``left.left_column == right.right_column`` using a hash table."""
    buckets: Dict[Any, List[Mapping[str, Any]]] = {}
    for right_row in right:
        buckets.setdefault(right_row[right_column], []).append(right_row)
    result: List[JoinedRow] = []
    for left_row in left:
        for right_row in buckets.get(left_row[left_column], ()):
            result.append(_merge(left_row, right_row, right_prefix))
    return result


def reachability_join_rows(
    left_rows: Iterable[Mapping[str, Any]],
    right_rows: Iterable[Mapping[str, Any]],
    *,
    out_column: str = "lout",
    in_column: str = "lin",
    id_column: str = "node",
) -> List[Tuple[Any, Any]]:
    """Return id pairs ``(x, y)`` with ``Lout(x) ∩ Lin(y) ≠ ∅``.

    ``left_rows`` and ``right_rows`` are rows of the per-label base tables
    described in Section 3.3, each holding a node identifier plus its 2-hop
    ``Lin`` / ``Lout`` center sets.  Rather than intersecting every pair
    (quadratic in the table sizes), the join builds an inverted index from
    center to the right-side nodes whose ``Lin`` contains it, then probes it
    with each left-side node's ``Lout`` — this is exactly the access pattern
    the W-table / cluster index accelerates.
    """
    center_to_targets: Dict[Any, Set[Any]] = {}
    for row in right_rows:
        node = row[id_column]
        for center in row[in_column]:
            center_to_targets.setdefault(center, set()).add(node)
    pairs: Set[Tuple[Any, Any]] = set()
    for row in left_rows:
        node = row[id_column]
        for center in row[out_column]:
            for target in center_to_targets.get(center, ()):
                pairs.add((node, target))
    return sorted(pairs, key=lambda pair: (str(pair[0]), str(pair[1])))


def reachability_join(
    left: Table,
    right: Table,
    *,
    out_column: str = "lout",
    in_column: str = "lin",
    id_column: str = "node",
) -> List[Tuple[Any, Any]]:
    """Reachability join between two base :class:`Table` objects (Section 3.3).

    Returns the sorted list of ``(x, y)`` node-id pairs such that ``x ⤳ y``
    according to the 2-hop labeling stored in the tables.
    """
    return reachability_join_rows(
        left.rows(),
        right.rows(),
        out_column=out_column,
        in_column=in_column,
        id_column=id_column,
    )
