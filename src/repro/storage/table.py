"""An in-memory relational table.

The paper stores its reachability index "into a relational database, where
each label is represented with a three-column table" (Section 3.3).  This
module provides the relational substrate that plays that role: column-typed
tables with optional unique keys and secondary indexes, plus the select /
project / insert operations needed by the join-index machinery and the
benchmark harness.  It is intentionally small — no SQL parser, no buffer
manager — but it enforces a schema, so that the index code reads like the
paper's relational description rather than like ad-hoc dict juggling.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import (
    Any,
    Callable,
    Dict,
    Iterable,
    Iterator,
    List,
    Mapping,
    Optional,
    Sequence,
    Tuple,
)

from repro.exceptions import DuplicateKeyError, SchemaError

__all__ = ["Column", "Schema", "Row", "Table"]


@dataclass(frozen=True)
class Column:
    """A column definition: a name, an optional Python type, and nullability."""

    name: str
    type: Optional[type] = None
    nullable: bool = False

    def validate(self, value: Any) -> Any:
        """Check (and return) a value destined for this column."""
        if value is None:
            if not self.nullable:
                raise SchemaError(f"column {self.name!r} is not nullable")
            return None
        if self.type is not None and not isinstance(value, self.type):
            raise SchemaError(
                f"column {self.name!r} expects {self.type.__name__}, "
                f"got {type(value).__name__} ({value!r})"
            )
        return value


class Schema:
    """An ordered collection of :class:`Column` definitions."""

    def __init__(self, columns: Sequence[Column]) -> None:
        if not columns:
            raise SchemaError("a schema needs at least one column")
        names = [column.name for column in columns]
        if len(names) != len(set(names)):
            raise SchemaError(f"duplicate column names in schema: {names}")
        self._columns: Tuple[Column, ...] = tuple(columns)
        self._by_name: Dict[str, Column] = {column.name: column for column in columns}

    @property
    def columns(self) -> Tuple[Column, ...]:
        """The column definitions, in declaration order."""
        return self._columns

    @property
    def column_names(self) -> Tuple[str, ...]:
        """The column names, in declaration order."""
        return tuple(column.name for column in self._columns)

    def __contains__(self, name: str) -> bool:
        return name in self._by_name

    def __len__(self) -> int:
        return len(self._columns)

    def column(self, name: str) -> Column:
        """Return the column definition for ``name``."""
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"no column named {name!r} (have {self.column_names})") from None

    def validate_row(self, values: Mapping[str, Any]) -> Dict[str, Any]:
        """Validate a row mapping against the schema and return a normalized dict."""
        unknown = set(values) - set(self._by_name)
        if unknown:
            raise SchemaError(f"unknown columns {sorted(unknown)} (have {self.column_names})")
        row: Dict[str, Any] = {}
        for column in self._columns:
            row[column.name] = column.validate(values.get(column.name))
        return row


class Row(Mapping[str, Any]):
    """An immutable row of a table (a read-only mapping of column name to value)."""

    __slots__ = ("_values",)

    def __init__(self, values: Dict[str, Any]) -> None:
        self._values = values

    def __getitem__(self, key: str) -> Any:
        return self._values[key]

    def __iter__(self) -> Iterator[str]:
        return iter(self._values)

    def __len__(self) -> int:
        return len(self._values)

    def __repr__(self) -> str:
        inner = ", ".join(f"{key}={value!r}" for key, value in self._values.items())
        return f"Row({inner})"

    def __eq__(self, other: object) -> bool:
        if isinstance(other, Row):
            return self._values == other._values
        if isinstance(other, Mapping):
            return dict(self._values) == dict(other)
        return NotImplemented

    def __hash__(self) -> int:
        return hash(tuple(sorted((k, _hashable(v)) for k, v in self._values.items())))


def _hashable(value: Any) -> Any:
    if isinstance(value, (list, set)):
        return tuple(sorted(map(str, value)))
    if isinstance(value, dict):
        return tuple(sorted((k, str(v)) for k, v in value.items()))
    return value


class Table:
    """A schema-enforced, optionally keyed in-memory table.

    Parameters
    ----------
    name:
        Table name (used in error messages and by the catalog).
    schema:
        The :class:`Schema` rows must conform to.
    key:
        Optional name of a column whose values must be unique; lookups by key
        are O(1) through a hash index.
    """

    def __init__(self, name: str, schema: Schema, key: Optional[str] = None) -> None:
        if key is not None and key not in schema:
            raise SchemaError(f"key column {key!r} is not part of the schema")
        self.name = name
        self.schema = schema
        self.key = key
        self._rows: List[Row] = []
        self._key_index: Dict[Any, int] = {}
        self._secondary: Dict[str, Dict[Any, List[int]]] = {}

    # --------------------------------------------------------------- writes

    def insert(self, **values: Any) -> Row:
        """Insert one row given as keyword arguments; returns the stored :class:`Row`."""
        normalized = self.schema.validate_row(values)
        row = Row(normalized)
        if self.key is not None:
            key_value = normalized[self.key]
            if key_value in self._key_index:
                raise DuplicateKeyError(
                    f"table {self.name!r}: duplicate key {key_value!r} for column {self.key!r}"
                )
            self._key_index[key_value] = len(self._rows)
        position = len(self._rows)
        self._rows.append(row)
        for column, index in self._secondary.items():
            index.setdefault(normalized[column], []).append(position)
        return row

    def insert_many(self, rows: Iterable[Mapping[str, Any]]) -> int:
        """Insert many rows; returns the number inserted."""
        count = 0
        for values in rows:
            self.insert(**values)
            count += 1
        return count

    def create_index(self, column: str) -> None:
        """Create (or rebuild) a secondary hash index on ``column``."""
        self.schema.column(column)
        index: Dict[Any, List[int]] = {}
        for position, row in enumerate(self._rows):
            index.setdefault(row[column], []).append(position)
        self._secondary[column] = index

    # ---------------------------------------------------------------- reads

    def __len__(self) -> int:
        return len(self._rows)

    def __iter__(self) -> Iterator[Row]:
        return iter(self._rows)

    def rows(self) -> List[Row]:
        """Return all rows (a copy of the list; rows themselves are immutable)."""
        return list(self._rows)

    def get(self, key_value: Any) -> Optional[Row]:
        """Return the row with the given primary-key value, or ``None``."""
        if self.key is None:
            raise SchemaError(f"table {self.name!r} has no key column")
        position = self._key_index.get(key_value)
        return self._rows[position] if position is not None else None

    def select(
        self,
        predicate: Optional[Callable[[Row], bool]] = None,
        **equals: Any,
    ) -> List[Row]:
        """Return rows matching equality filters and/or an arbitrary predicate.

        Equality filters use a secondary index when one exists on the column,
        otherwise they scan.
        """
        candidates: Optional[List[Row]] = None
        remaining = dict(equals)
        for column, value in list(remaining.items()):
            if column in self._secondary:
                positions = self._secondary[column].get(value, [])
                candidates = [self._rows[i] for i in positions]
                del remaining[column]
                break
        if candidates is None:
            candidates = self._rows
        result = []
        for row in candidates:
            if all(row[column] == value for column, value in remaining.items()):
                if predicate is None or predicate(row):
                    result.append(row)
        return result

    def project(self, *columns: str) -> List[Tuple[Any, ...]]:
        """Return tuples of the requested columns for every row."""
        for column in columns:
            self.schema.column(column)
        return [tuple(row[column] for column in columns) for row in self._rows]

    def distinct(self, column: str) -> List[Any]:
        """Return the distinct values of ``column`` (in first-seen order)."""
        self.schema.column(column)
        seen: Dict[Any, None] = {}
        for row in self._rows:
            seen.setdefault(_hashable(row[column]), None)
        return list(seen)

    def __repr__(self) -> str:
        return f"<Table {self.name!r}: {len(self._rows)} rows, columns={self.schema.column_names}>"
