"""Benchmark-harness support: workload generation, the service-driven replay
driver, query mixes, scenarios, metrics."""

from repro.workloads.driver import (
    WorkloadReport,
    install_policies,
    open_loop_arrivals,
    run_workload,
)
from repro.workloads.generator import (
    GRAPH_FAMILIES,
    Workload,
    WorkloadSpec,
    build_graph,
    build_workload,
)
from repro.workloads.metrics import MetricSeries, Timer, format_table, measure, speedup
from repro.workloads.queries import (
    expression_of_shape,
    random_expression,
    random_query_mix,
    random_step,
)
from repro.workloads.scenarios import SCENARIOS, Scenario, scenario, scenario_names

__all__ = [
    "WorkloadReport",
    "install_policies",
    "open_loop_arrivals",
    "run_workload",
    "GRAPH_FAMILIES",
    "Workload",
    "WorkloadSpec",
    "build_graph",
    "build_workload",
    "MetricSeries",
    "Timer",
    "format_table",
    "measure",
    "speedup",
    "expression_of_shape",
    "random_expression",
    "random_query_mix",
    "random_step",
    "SCENARIOS",
    "Scenario",
    "scenario",
    "scenario_names",
]
