"""The workload driver: replay a generated workload through a GraphService.

Before PR 5 every benchmark hand-rolled its own replay loop against the
engines.  The driver is the one canonical loop, phrased entirely in the
service API so that plans, backend choices and timings come back on the
results instead of being scraped from side-channels:

* the **request stream** runs through :meth:`GraphService.check`;
* the **bulk_audience scenario** runs through :meth:`GraphService.
  bulk_access` (one grouped call per batch);
* the **churn scenario** interleaves its mutation bursts between request
  slices via :func:`~repro.workloads.generator.apply_churn_op`, exercising
  snapshot delta-maintenance and the planner's stability reset.

The returned :class:`WorkloadReport` aggregates decisions, grant rate,
per-phase wall-clock seconds and how many queries each backend executed
(the planner's routing, measured rather than asserted).
"""

from __future__ import annotations

import random
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional

from repro.service.facade import GraphService
from repro.workloads.generator import Workload, apply_churn_op

__all__ = [
    "WorkloadReport",
    "install_policies",
    "open_loop_arrivals",
    "run_workload",
]


def open_loop_arrivals(count: int, rate: float, *, seed: int = 7) -> List[float]:
    """Seeded Poisson-process arrival offsets for an open-loop load driver.

    Returns ``count`` monotonically increasing offsets (seconds from the
    start of the run) whose inter-arrival gaps are exponentially
    distributed with mean ``1 / rate`` — a Poisson arrival process.  An
    **open-loop** driver issues request *i* at its scheduled offset whether
    or not earlier requests have completed, so a slow server accumulates
    queue depth instead of silently throttling the workload (the failure
    mode closed-loop replay hides, and the regime admission control
    exists for).  Deterministic for a given ``(count, rate, seed)``.
    """
    if count < 0:
        raise ValueError(f"count must be >= 0, got {count}")
    if rate <= 0:
        raise ValueError(f"rate must be > 0, got {rate}")
    rng = random.Random(seed)
    offsets: List[float] = []
    clock = 0.0
    for _ in range(count):
        clock += rng.expovariate(rate)
        offsets.append(clock)
    return offsets


@dataclass
class WorkloadReport:
    """What one workload replay did and how long each phase took."""

    requests: int = 0
    grants: int = 0
    audience_batches: int = 0
    audiences_materialized: int = 0
    churn_ops: int = 0
    #: Wall-clock seconds per phase: "requests", "audiences", "churn".
    seconds: Dict[str, float] = field(default_factory=dict)
    #: How many queries each backend executed (from the results' plans).
    backend_queries: Dict[str, int] = field(default_factory=dict)

    @property
    def grant_rate(self) -> float:
        """Granted share of the request stream (0.0 on an empty stream)."""
        return self.grants / self.requests if self.requests else 0.0

    @property
    def total_seconds(self) -> float:
        return sum(self.seconds.values())

    def count_backend(self, backend: str) -> None:
        self.backend_queries[backend] = self.backend_queries.get(backend, 0) + 1

    def describe(self) -> str:
        """One-line summary for benchmark logs."""
        routing = ", ".join(
            f"{name}:{count}" for name, count in sorted(self.backend_queries.items())
        )
        return (
            f"{self.requests} requests ({self.grant_rate:.2f} granted), "
            f"{self.audience_batches} audience batches, {self.churn_ops} churn ops "
            f"in {self.total_seconds:.3f}s [{routing}]"
        )


def install_policies(service: GraphService, workload: Workload) -> None:
    """Register the workload's resources and rules in the service's store.

    Idempotent: resources the store already knows are left untouched, so a
    driver re-run against the same service does not duplicate rules.
    """
    store = service.store
    for resource_id, owner, expressions in workload.resources:
        if store.has_resource(resource_id):
            continue
        store.share(owner, resource_id)
        store.allow(resource_id, list(expressions))


def run_workload(
    service: GraphService,
    workload: Workload,
    *,
    explain: bool = False,
    direction: str = "auto",
    churn: Optional[bool] = None,
) -> WorkloadReport:
    """Replay one workload through the service; returns the aggregate report.

    ``churn`` replays the workload's mutation bursts interleaved evenly
    between request slices (default: on exactly when the workload carries
    bursts).  ``direction`` pins the audience sweeps; ``explain`` collects
    full decisions on the request stream (off by default — the fast path the
    throughput benchmarks exercise).
    """
    install_policies(service, workload)
    report = WorkloadReport()
    bursts: List = list(workload.churn) if (churn is None or churn) else []
    requests = list(workload.requests)

    # Interleave: split the request stream into len(bursts) + 1 slices and
    # replay one burst between consecutive slices.
    slice_count = len(bursts) + 1
    slice_size = max(1, (len(requests) + slice_count - 1) // slice_count) if requests else 0

    started = time.perf_counter()
    churn_seconds = 0.0
    position = 0
    for phase in range(slice_count):
        for requester, resource_id in requests[position:position + slice_size]:
            result = service.check(requester, resource_id, explain=explain)
            report.requests += 1
            report.grants += int(result.granted)
            report.count_backend(result.plan.backend)
        position += slice_size
        if phase < len(bursts):
            churn_started = time.perf_counter()
            for op in bursts[phase]:
                apply_churn_op(service.graph, op)
                report.churn_ops += 1
            churn_seconds += time.perf_counter() - churn_started
    report.seconds["requests"] = time.perf_counter() - started - churn_seconds
    report.seconds["churn"] = churn_seconds

    started = time.perf_counter()
    for batch in workload.audience_requests:
        result = service.bulk_access(batch, direction=direction)
        report.audience_batches += 1
        report.audiences_materialized += len(result.audiences)
        report.count_backend(result.plan.backend)
    report.seconds["audiences"] = time.perf_counter() - started
    return report
