"""Parameterized benchmark workloads.

A *workload* bundles a synthetic social graph together with a set of access
rules and a stream of access requests, so that every benchmark (latency,
throughput, index construction, ablations) draws from the same,
deterministically seeded material.  The graph families map onto the
generators of :mod:`repro.graph.generators`; sizes are expressed in users.
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Callable, Dict, Hashable, List, Optional, Sequence, Tuple

from repro.graph.generators import (
    LabelDistribution,
    community_graph,
    forest_fire_graph,
    preferential_attachment_graph,
    random_graph,
    small_world_graph,
)
from repro.graph.social_graph import SocialGraph

__all__ = [
    "WorkloadSpec",
    "Workload",
    "GRAPH_FAMILIES",
    "ChurnOp",
    "apply_churn_op",
    "build_graph",
    "build_workload",
]

#: One churn operation, executable against the workload graph in burst
#: order: ``("add_edge", u, v, label)`` / ``("remove_edge", u, v, label)`` /
#: ``("set_attribute", u, key, value)`` / ``("remove_user", u)`` /
#: ``("add_user", u)``.
ChurnOp = Tuple


def apply_churn_op(graph: SocialGraph, op: ChurnOp) -> None:
    """Execute one churn operation through the public mutation API.

    Bursts are generated against a simulation of the graph's edge and user
    populations, so replaying them *in order* is always valid; each call
    commits exactly one epoch bump (and one journal entry) per operation.
    """
    kind = op[0]
    if kind == "add_edge":
        graph.add_relationship(op[1], op[2], op[3])
    elif kind == "remove_edge":
        graph.remove_relationship(op[1], op[2], op[3])
    elif kind == "set_attribute":
        graph.update_user(op[1], **{op[2]: op[3]})
    elif kind == "remove_user":
        graph.remove_user(op[1])
    elif kind == "add_user":
        graph.add_user(op[1])
    else:
        raise ValueError(f"unknown churn operation {op!r}")


GRAPH_FAMILIES: Dict[str, Callable[..., SocialGraph]] = {
    "erdos-renyi": random_graph,
    "barabasi-albert": preferential_attachment_graph,
    "watts-strogatz": small_world_graph,
    "forest-fire": forest_fire_graph,
    "planted-partition": community_graph,
}


@dataclass(frozen=True)
class WorkloadSpec:
    """Description of one benchmark workload.

    Besides the per-request stream (the ``check_access`` path), a workload
    can carry a **bulk_audience scenario**: ``audience_batches`` groups of
    ``audience_batch_size`` resources each, meant to be answered by one
    :meth:`~repro.policy.engine.AccessControlEngine.authorized_audiences`
    call per group — the batched path the multi-source owner sweep serves.

    It can also carry a **churn scenario**: ``churn_bursts`` bursts of
    ``churn_burst_size`` mutations each (edge removals paired with edge
    additions so |E| stays roughly constant, plus attribute rewrites in a
    ``churn_attribute_fraction`` share), meant to be replayed between query
    bursts with :func:`apply_churn_op`.  This is the workload that makes the
    snapshot-refresh cost visible: every burst invalidates the compiled
    snapshot, and the delta-maintenance path (PERF-9) absorbs it in
    O(|burst|) where the full rebuild pays O(|V| + |E|).
    """

    family: str = "barabasi-albert"
    users: int = 500
    seed: int = 7
    rules_per_owner: int = 1
    owners: int = 10
    requests: int = 200
    #: Number of grouped ``authorized_audiences`` requests to emit.
    audience_batches: int = 0
    #: Resources per grouped audience request (capped at the resource count).
    audience_batch_size: int = 8
    #: Number of mutation bursts in the churn scenario (0 disables it).
    churn_bursts: int = 0
    #: Mutations per churn burst.
    churn_burst_size: int = 16
    #: Share of each burst that rewrites node attributes instead of edges.
    churn_attribute_fraction: float = 0.25
    #: Share of the remaining (non-attribute) ops that churn *users* instead
    #: of edges: alternating ``remove_user`` (incident edges vanish with the
    #: node) and ``add_user`` (a fresh name joins the population) so |V|
    #: stays roughly constant.  The remove-heavy regime the tombstone path
    #: (PR 7) exists for; ``0.0`` (the default) reproduces pre-PR 7 bursts
    #: byte for byte.
    churn_remove_user_fraction: float = 0.0
    expressions: Tuple[str, ...] = (
        "friend+[1]",
        "friend+[1,2]",
        "friend+[1,2]/colleague+[1]",
        "friend+[1]/parent+[1]/friend+[1]",
        "colleague*[1,2]",
    )
    family_options: Tuple[Tuple[str, object], ...] = ()

    def describe(self) -> str:
        """Return a compact identifier for benchmark labels."""
        return f"{self.family}-n{self.users}-s{self.seed}"


@dataclass
class Workload:
    """A generated workload: graph + protected resources + request stream."""

    spec: WorkloadSpec
    graph: SocialGraph
    # (resource_id, owner, expressions used in the rule)
    resources: List[Tuple[str, Hashable, Tuple[str, ...]]] = field(default_factory=list)
    # (requester, resource_id)
    requests: List[Tuple[Hashable, str]] = field(default_factory=list)
    # bulk_audience scenario: each entry is one grouped authorized_audiences
    # request (a tuple of resource ids materialized together)
    audience_requests: List[Tuple[str, ...]] = field(default_factory=list)
    # churn scenario: bursts of mutations, valid when replayed in order
    # against `graph` (interleave them with query bursts via apply_churn_op)
    churn: List[Tuple[ChurnOp, ...]] = field(default_factory=list)

    def owners(self) -> List[Hashable]:
        """Return the owners of the protected resources (deduplicated, ordered)."""
        seen: Dict[Hashable, None] = {}
        for _resource_id, owner, _expressions in self.resources:
            seen.setdefault(owner, None)
        return list(seen)


def build_graph(spec: WorkloadSpec) -> SocialGraph:
    """Generate the social graph described by a workload spec."""
    try:
        factory = GRAPH_FAMILIES[spec.family]
    except KeyError:
        raise ValueError(
            f"unknown graph family {spec.family!r}; expected one of {sorted(GRAPH_FAMILIES)}"
        ) from None
    options = dict(spec.family_options)
    return factory(spec.users, seed=spec.seed, **options)


def build_workload(spec: WorkloadSpec) -> Workload:
    """Generate the full workload (graph, rules material, request stream)."""
    rng = random.Random(spec.seed + 104729)
    graph = build_graph(spec)
    users = sorted(graph.users(), key=str)
    if not users:
        return Workload(spec=spec, graph=graph)

    owners = rng.sample(users, min(spec.owners, len(users)))
    resources: List[Tuple[str, Hashable, Tuple[str, ...]]] = []
    for owner_index, owner in enumerate(owners):
        for rule_index in range(spec.rules_per_owner):
            resource_id = f"res-{owner_index}-{rule_index}"
            expression = spec.expressions[(owner_index + rule_index) % len(spec.expressions)]
            resources.append((resource_id, owner, (expression,)))

    requests: List[Tuple[Hashable, str]] = []
    if resources:
        for _ in range(spec.requests):
            requester = rng.choice(users)
            resource_id = rng.choice(resources)[0]
            requests.append((requester, resource_id))

    # The bulk_audience scenario: grouped audience materializations, so the
    # benchmarks exercise authorized_audiences (one multi-source sweep per
    # distinct expression in the group) and not only the per-request path.
    audience_requests: List[Tuple[str, ...]] = []
    if resources and spec.audience_batches > 0:
        resource_ids = [resource_id for resource_id, _owner, _exprs in resources]
        size = max(1, min(spec.audience_batch_size, len(resource_ids)))
        for _ in range(spec.audience_batches):
            audience_requests.append(tuple(rng.sample(resource_ids, size)))
    return Workload(
        spec=spec,
        graph=graph,
        resources=resources,
        requests=requests,
        audience_requests=audience_requests,
        churn=_generate_churn(spec, graph, users, rng),
    )


def _generate_churn(
    spec: WorkloadSpec,
    graph: SocialGraph,
    users: Sequence[Hashable],
    rng: random.Random,
) -> List[Tuple[ChurnOp, ...]]:
    """Generate ``spec.churn_bursts`` bursts of valid, ordered mutations.

    The bursts are built against a *simulated* edge and user population
    (seeded from the generated graph) so every removal names an edge or
    user that exists and every addition one that does not, at the point it
    is replayed.  Edge churn alternates remove/add to hold |E| roughly
    constant — the regime where a full snapshot rebuild's O(|V| + |E|)
    cost is pure overhead — and, when ``churn_remove_user_fraction > 0``,
    user churn alternates the same way: a ``remove_user`` takes its
    incident edges out of the simulation (the graph drops them with the
    node), a later ``add_user`` restores the population with a fresh name.
    """
    if spec.churn_bursts <= 0 or spec.churn_burst_size <= 0 or not users:
        return []
    labels = list(graph.labels()) or ["friend"]
    # List + set mirrors of the edge and user populations: O(1) uniform
    # choice (by index), O(1) removal (swap with the tail), deterministic
    # for the rng.  With churn_remove_user_fraction == 0 the pool is never
    # mutated and the rng stream is identical to pre-PR 7 bursts.
    edge_list = [(rel.source, rel.target, rel.label) for rel in graph.relationships()]
    edge_set = set(edge_list)
    user_pool = list(users)
    user_set = set(user_pool)
    next_user_serial = 0
    bursts: List[Tuple[ChurnOp, ...]] = []
    for _ in range(spec.churn_bursts):
        ops: List[ChurnOp] = []
        remove_next = True
        remove_user_next = True
        while len(ops) < spec.churn_burst_size:
            if rng.random() < spec.churn_attribute_fraction:
                ops.append(
                    ("set_attribute", rng.choice(user_pool), "age", rng.randint(13, 90))
                )
                continue
            if (
                spec.churn_remove_user_fraction > 0
                and rng.random() < spec.churn_remove_user_fraction
            ):
                if remove_user_next and len(user_pool) > 2:
                    position = rng.randrange(len(user_pool))
                    user = user_pool[position]
                    user_pool[position] = user_pool[-1]
                    user_pool.pop()
                    user_set.discard(user)
                    # The node takes its incident edges with it.
                    edge_list = [
                        edge
                        for edge in edge_list
                        if edge[0] != user and edge[1] != user
                    ]
                    edge_set = set(edge_list)
                    ops.append(("remove_user", user))
                    remove_user_next = False
                else:
                    while True:
                        name = f"churn-user-{next_user_serial}"
                        next_user_serial += 1
                        if name not in user_set:
                            break
                    user_pool.append(name)
                    user_set.add(name)
                    ops.append(("add_user", name))
                    remove_user_next = True
                continue
            if remove_next and edge_list:
                position = rng.randrange(len(edge_list))
                edge = edge_list[position]
                edge_list[position] = edge_list[-1]
                edge_list.pop()
                edge_set.discard(edge)
                ops.append(("remove_edge",) + edge)
                remove_next = False
                continue
            for _attempt in range(32):
                candidate = (
                    rng.choice(user_pool),
                    rng.choice(user_pool),
                    rng.choice(labels),
                )
                if candidate not in edge_set:
                    edge_set.add(candidate)
                    edge_list.append(candidate)
                    ops.append(("add_edge",) + candidate)
                    break
            remove_next = True
        bursts.append(tuple(ops))
    return bursts
