"""Measurement helpers shared by the benchmark harness.

``pytest-benchmark`` measures wall-clock time per call; the experiments in
docs/benchmarks.md additionally need derived metrics (index sizes, throughput,
speed-ups, crossover points) and a uniform way to print comparison tables.
This module centralizes those: a :class:`Timer`, a :class:`MetricSeries` for
parameter sweeps, and table formatting used by every ``bench_*`` module so
that the printed output of the harness reads like the paper's evaluation
section would.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Callable, Dict, Iterable, List, Mapping, Optional, Sequence, Tuple

__all__ = ["Timer", "measure", "MetricSeries", "format_table", "speedup"]


class Timer:
    """A context manager measuring elapsed wall-clock seconds."""

    def __init__(self) -> None:
        self.elapsed = 0.0
        self._started = 0.0

    def __enter__(self) -> "Timer":
        self._started = time.perf_counter()
        return self

    def __exit__(self, *_exc_info) -> None:
        self.elapsed = time.perf_counter() - self._started


def measure(function: Callable[[], object], *, repeats: int = 3) -> Tuple[float, object]:
    """Call ``function`` ``repeats`` times; return (median seconds, last result)."""
    timings = []
    result: object = None
    for _ in range(max(1, repeats)):
        started = time.perf_counter()
        result = function()
        timings.append(time.perf_counter() - started)
    return statistics.median(timings), result


def speedup(baseline_seconds: float, candidate_seconds: float) -> float:
    """Return how many times faster the candidate is than the baseline."""
    if candidate_seconds <= 0:
        return float("inf")
    return baseline_seconds / candidate_seconds


@dataclass
class MetricSeries:
    """Rows of measurements produced by one parameter sweep."""

    name: str
    columns: Sequence[str]
    rows: List[Dict[str, object]] = field(default_factory=list)

    def add(self, **values: object) -> None:
        """Append one row (values keyed by column name)."""
        self.rows.append(dict(values))

    def column(self, name: str) -> List[object]:
        """Return one column as a list (missing cells become ``None``)."""
        return [row.get(name) for row in self.rows]

    def to_table(self) -> str:
        """Render the series as an aligned text table."""
        return format_table(self.columns, self.rows, title=self.name)


def _format_cell(value: object) -> str:
    if isinstance(value, float):
        if value == 0:
            return "0"
        if abs(value) >= 1000 or abs(value) < 0.001:
            return f"{value:.3e}"
        return f"{value:.4f}"
    return str(value)


def format_table(
    columns: Sequence[str],
    rows: Iterable[Mapping[str, object]],
    *,
    title: Optional[str] = None,
) -> str:
    """Render rows as an aligned, pipe-separated text table."""
    rendered_rows = [[_format_cell(row.get(column, "")) for column in columns] for row in rows]
    widths = [len(column) for column in columns]
    for row in rendered_rows:
        for index, cell in enumerate(row):
            widths[index] = max(widths[index], len(cell))
    lines = []
    if title:
        lines.append(title)
    header = " | ".join(column.ljust(widths[index]) for index, column in enumerate(columns))
    lines.append(header)
    lines.append("-+-".join("-" * width for width in widths))
    for row in rendered_rows:
        lines.append(" | ".join(cell.ljust(widths[index]) for index, cell in enumerate(row)))
    return "\n".join(lines)
