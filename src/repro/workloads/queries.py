"""Random query and policy generation.

Used by the benchmarks (to produce query mixes of controlled shape: number of
steps, depth-interval width, direction mix, attribute selectivity) and by the
property-based tests (as a plain-``random`` counterpart to the hypothesis
strategies).  All functions are deterministic for a given ``random.Random``.
"""

from __future__ import annotations

import random
from typing import Hashable, List, Optional, Sequence, Tuple

from repro.graph.social_graph import SocialGraph
from repro.policy.conditions import AttributeCondition
from repro.policy.path_expression import PathExpression
from repro.policy.steps import DepthInterval, Direction, Step

__all__ = [
    "random_step",
    "random_expression",
    "random_query_mix",
    "expression_of_shape",
]

_DIRECTION_WEIGHTS: Sequence[Tuple[Direction, float]] = (
    (Direction.OUTGOING, 0.7),
    (Direction.INCOMING, 0.15),
    (Direction.ANY, 0.15),
)


def random_step(
    rng: random.Random,
    labels: Sequence[str],
    *,
    max_depth: int = 3,
    condition_probability: float = 0.2,
    directions: Sequence[Tuple[Direction, float]] = _DIRECTION_WEIGHTS,
) -> Step:
    """Draw one random step over the given label alphabet."""
    label = rng.choice(list(labels))
    direction = rng.choices(
        [member for member, _weight in directions],
        weights=[weight for _member, weight in directions],
        k=1,
    )[0]
    low = rng.randint(1, max_depth)
    high = rng.randint(low, max_depth)
    conditions: Tuple[AttributeCondition, ...] = ()
    if rng.random() < condition_probability:
        attribute, operator, value = rng.choice(
            [
                ("age", ">=", 18),
                ("age", "<", 40),
                ("gender", "=", "female"),
                ("city", "=", "paris"),
                ("job", "!=", "student"),
            ]
        )
        conditions = (AttributeCondition(attribute, operator, value),)
    return Step(label=label, direction=direction, depths=DepthInterval(low, high), conditions=conditions)


def random_expression(
    rng: random.Random,
    labels: Sequence[str],
    *,
    max_steps: int = 3,
    max_depth: int = 3,
    condition_probability: float = 0.2,
) -> PathExpression:
    """Draw one random path expression with 1..max_steps steps."""
    count = rng.randint(1, max_steps)
    steps = [
        random_step(rng, labels, max_depth=max_depth, condition_probability=condition_probability)
        for _ in range(count)
    ]
    return PathExpression.of(*steps)


def expression_of_shape(
    labels: Sequence[str],
    *,
    steps: int,
    depth_width: int,
    direction: Direction = Direction.OUTGOING,
) -> PathExpression:
    """Build a deterministic expression of a given shape (for the ablation benches).

    ``steps`` steps cycle through the label alphabet; every step carries the
    depth interval ``[1, depth_width]`` and the same direction.
    """
    parts = []
    for index in range(steps):
        label = labels[index % len(labels)]
        parts.append(
            Step(label=label, direction=direction, depths=DepthInterval(1, max(1, depth_width)))
        )
    return PathExpression.of(*parts)


def random_query_mix(
    graph: SocialGraph,
    count: int,
    *,
    seed: int = 13,
    max_steps: int = 3,
    max_depth: int = 3,
    condition_probability: float = 0.1,
) -> List[Tuple[Hashable, Hashable, PathExpression]]:
    """Draw ``count`` (source, target, expression) triples over a graph."""
    rng = random.Random(seed)
    users = sorted(graph.users(), key=str)
    labels = graph.labels() or ("friend",)
    if len(users) < 2:
        return []
    queries = []
    for _ in range(count):
        source, target = rng.sample(users, 2)
        expression = random_expression(
            rng,
            labels,
            max_steps=max_steps,
            max_depth=max_depth,
            condition_probability=condition_probability,
        )
        queries.append((source, target, expression))
    return queries
