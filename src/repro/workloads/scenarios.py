"""Named access-control scenarios.

The paper motivates its model with concrete sharing situations ("only my
family and my friends can view my birthday photos", "only my children and
their friends can read my notes on The Simpsons", "only my reliable
neighbors can have access to the details of my next holidays", the Q1 query,
the Section-3.4 worked example).  Each scenario here packages one such
situation as a (description, path expressions) pair so that examples, tests
and the throughput benchmark all speak about the same policies.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Tuple

__all__ = ["Scenario", "SCENARIOS", "scenario", "scenario_names"]


@dataclass(frozen=True)
class Scenario:
    """A named sharing situation and the access-condition expressions encoding it.

    ``combination`` mirrors :class:`~repro.policy.rules.CombinationMode`:
    ``"any"`` means each expression describes an alternative audience (e.g.
    "my family *and* my friends" — the union), ``"all"`` means a requester
    must satisfy every expression (the paper's Definition-2 semantics within
    one rule).
    """

    name: str
    description: str
    expressions: Tuple[str, ...]
    source: str = ""
    combination: str = "any"

    def describe(self) -> str:
        """Return a short, human-readable summary."""
        rendered = "; ".join(self.expressions)
        return f"{self.name}: {self.description} -> {rendered}"


SCENARIOS: Dict[str, Scenario] = {
    scenario.name: scenario
    for scenario in (
        Scenario(
            name="direct-friends",
            description="share with my direct friends only",
            expressions=("friend+[1]",),
            source="Facebook-list baseline discussed in the introduction",
        ),
        Scenario(
            name="friends-of-friends",
            description="share with friends and friends of friends",
            expressions=("friend+[1,2]",),
            source="introduction",
        ),
        Scenario(
            name="family-and-friends",
            description="only my family (children) and my friends can view my birthday photos",
            expressions=("friend+[1]", "parent+[1]"),
            source="introduction ('only my family and my friends...')",
        ),
        Scenario(
            name="children-of-friends-of-friends",
            description="only my children and their friends can read my notes",
            expressions=("parent+[1]/friend+[1]", "parent+[1]"),
            source="introduction ('only my children and their friends...')",
        ),
        Scenario(
            name="q1-colleagues-of-friends",
            description="colleagues of my friends, up to friends of friends (query Q1)",
            expressions=("friend+[1,2]/colleague+[1]",),
            source="Figure 2",
        ),
        Scenario(
            name="friends-of-friends-parents",
            description="friends of my friends' parents (Section 3.4 worked example)",
            expressions=("friend+[1]/parent+[1]/friend+[1]",),
            source="Section 3.4",
        ),
        Scenario(
            name="who-call-me-friend",
            description="users who declare me as a friend, and their friends",
            expressions=("friend-[1,2]",),
            source="Section 2 (David's jokes example)",
        ),
        Scenario(
            name="adult-friends-of-friends",
            description="adults within two friendship hops",
            expressions=("friend*[1,2]{age >= 18}",),
            source="attribute-condition feature of Definition 3",
        ),
        Scenario(
            name="colleague-network",
            description="my colleagues and the colleagues of my colleagues",
            expressions=("colleague+[1,2]",),
            source="introduction",
        ),
        Scenario(
            name="close-collaboration",
            description="people who are both friends-of-friends and colleagues-of-colleagues",
            expressions=("friend+[1,2]", "colleague+[1,2]"),
            source="multi-condition (AND) rule of Definition 2",
            combination="all",
        ),
    )
}


def scenario(name: str) -> Scenario:
    """Return a scenario by name."""
    return SCENARIOS[name]


def scenario_names() -> List[str]:
    """Return the available scenario names, sorted."""
    return sorted(SCENARIOS)
