"""Shared fixtures for the test suite."""

from __future__ import annotations

import random

import pytest

from repro.datasets.paper_graph import paper_graph
from repro.graph.builder import GraphBuilder
from repro.graph.generators import preferential_attachment_graph
from repro.graph.social_graph import SocialGraph
from repro.policy.store import PolicyStore


@pytest.fixture
def figure1():
    """The paper's Figure-1 social subgraph (7 users, 12 relationships)."""
    return paper_graph()


@pytest.fixture
def tiny_graph():
    """A 4-user chain with two labels, handy for focused unit tests.

    a -friend-> b -friend-> c -colleague-> d  and  a -colleague-> d.
    """
    builder = GraphBuilder(name="tiny")
    builder.user("a", age=30, gender="female")
    builder.user("b", age=25, gender="male")
    builder.user("c", age=40, gender="female")
    builder.user("d", age=17, gender="male")
    builder.relate("a", "b", "friend")
    builder.relate("b", "c", "friend")
    builder.relate("c", "d", "colleague")
    builder.relate("a", "d", "colleague")
    return builder.build()


@pytest.fixture
def small_random_graph():
    """A deterministic ~60-user scale-free graph for medium-sized tests."""
    return preferential_attachment_graph(60, edges_per_node=3, seed=42)


@pytest.fixture
def empty_graph():
    """A graph with no users at all."""
    return SocialGraph(name="empty")


@pytest.fixture
def policy_store(figure1):
    """A policy store with a handful of resources over the Figure-1 graph."""
    store = PolicyStore()
    store.share("Alice", "alice-photos", kind="photos", title="holiday album")
    store.share("Alice", "alice-notes", kind="notes")
    store.share("David", "david-jokes", kind="notes", title="jokes")
    return store


@pytest.fixture
def rng():
    """A seeded random generator for deterministic randomized tests."""
    return random.Random(1234)
