"""Golden tests for the Figure-1 example graph and its documented facts."""

from __future__ import annotations

import pytest

from repro.datasets.paper_graph import (
    ALICE,
    DAVID_INCOMING_FRIENDS,
    FRIEND_PATH_ALICE_GEORGE,
    BILL,
    COLIN,
    DAVID,
    EDGES,
    ELENA,
    FRED,
    GEORGE,
    LABELS,
    USERS,
    paper_graph,
)


class TestGraphShape:
    def test_user_count_matches_figure1(self):
        graph = paper_graph()
        assert graph.number_of_users() == 7

    def test_relationship_count_matches_figure5_enumeration(self):
        graph = paper_graph()
        assert graph.number_of_relationships() == 12

    def test_label_alphabet(self):
        graph = paper_graph()
        assert graph.labels() == LABELS == ("colleague", "friend", "parent")

    def test_every_listed_edge_is_present(self):
        graph = paper_graph()
        for source, target, label, _attrs in EDGES:
            assert graph.has_relationship(source, target, label)

    def test_no_extra_edges(self):
        graph = paper_graph()
        listed = {(s, t, l) for s, t, l, _ in EDGES}
        actual = {rel.key() for rel in graph.relationships()}
        assert actual == listed

    def test_all_users_listed(self):
        graph = paper_graph()
        assert set(graph.users()) == set(USERS) == {ALICE, BILL, COLIN, DAVID, ELENA, FRED, GEORGE}

    def test_graph_is_rebuilt_fresh_each_call(self):
        first = paper_graph()
        second = paper_graph()
        assert first is not second
        assert first == second


class TestPaperStatedFacts:
    def test_alice_attributes_match_definition1_example(self):
        graph = paper_graph()
        assert graph.attribute(ALICE, "gender") == "female"
        assert graph.attribute(ALICE, "age") == 24

    def test_friend_typed_path_alice_bill_elena_george(self):
        """Definition 1: a friend path Alice-Bill-Elena-George of length 3."""
        graph = paper_graph()
        nodes = FRIEND_PATH_ALICE_GEORGE
        assert nodes == [ALICE, BILL, ELENA, GEORGE]
        for source, target in zip(nodes, nodes[1:]):
            assert graph.has_relationship(source, target, "friend")

    def test_alice_colin_edge_carries_trust_annotation(self):
        graph = paper_graph()
        rel = graph.get_relationship(ALICE, COLIN, "friend")
        assert rel.attributes["trust"] == pytest.approx(0.8)

    def test_alice_david_edge_carries_trust_annotation(self):
        graph = paper_graph()
        rel = graph.get_relationship(ALICE, DAVID, "colleague")
        assert rel.attributes["trust"] == pytest.approx(0.6)

    def test_david_is_considered_friend_by_elena_and_colin(self):
        """Section 2: 'those who consider him as a friend (Elena and Colin)'."""
        graph = paper_graph()
        in_friends = {rel.source for rel in graph.in_relationships(DAVID, "friend")}
        assert in_friends == DAVID_INCOMING_FRIENDS == {ELENA, COLIN}

    def test_label_counts(self):
        graph = paper_graph()
        assert graph.number_of_relationships("friend") == 8
        assert graph.number_of_relationships("colleague") == 2
        assert graph.number_of_relationships("parent") == 2

    def test_fred_and_george_are_minors(self):
        """The children in the example have ages below 18 so that age conditions bite."""
        graph = paper_graph()
        assert graph.attribute(FRED, "age") < 18
        assert graph.attribute(GEORGE, "age") < 18
