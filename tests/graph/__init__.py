"""Test package (gives duplicate basenames like test_engine.py unique module paths)."""
