"""Unit tests for GraphBuilder and graph_from_edges."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder, graph_from_edges


class TestGraphBuilder:
    def test_auto_creates_endpoints(self):
        graph = GraphBuilder().relate("a", "b", "friend").build()
        assert graph.has_user("a") and graph.has_user("b")
        assert graph.has_relationship("a", "b", "friend")

    def test_symmetric_labels_add_both_directions(self):
        graph = GraphBuilder(symmetric_labels={"friend"}).relate("a", "b", "friend").build()
        assert graph.has_relationship("a", "b", "friend")
        assert graph.has_relationship("b", "a", "friend")

    def test_symmetric_declared_later(self):
        builder = GraphBuilder().symmetric("colleague")
        graph = builder.relate("a", "b", "colleague").build()
        assert graph.has_relationship("b", "a", "colleague")

    def test_non_symmetric_labels_stay_directed(self):
        graph = GraphBuilder(symmetric_labels={"friend"}).relate("a", "b", "parent").build()
        assert not graph.has_relationship("b", "a", "parent")

    def test_relate_is_idempotent(self):
        builder = GraphBuilder()
        builder.relate("a", "b", "friend").relate("a", "b", "friend")
        assert builder.build().number_of_relationships() == 1

    def test_user_attributes_merge(self):
        builder = GraphBuilder().user("a", age=20).user("a", city="paris")
        assert builder.build().attributes("a") == {"age": 20, "city": "paris"}

    def test_users_bulk(self):
        graph = GraphBuilder().users(["a", "b", "c"], role="member").build()
        assert all(graph.attribute(user, "role") == "member" for user in "abc")

    def test_relate_many_with_and_without_attributes(self):
        graph = GraphBuilder().relate_many(
            [("a", "b", "friend"), ("b", "c", "friend", {"trust": 0.5})]
        ).build()
        assert graph.number_of_relationships() == 2
        assert graph.get_relationship("b", "c", "friend").attributes["trust"] == 0.5

    def test_chain(self):
        graph = GraphBuilder().chain(["a", "b", "c", "d"], "friend").build()
        assert graph.number_of_relationships() == 3
        assert graph.has_relationship("c", "d", "friend")

    def test_star(self):
        graph = GraphBuilder().star("hub", ["a", "b", "c"], "manages").build()
        assert graph.out_degree("hub") == 3
        assert graph.has_relationship("hub", "b", "manages")

    def test_builder_reusable_after_build(self):
        builder = GraphBuilder()
        graph = builder.relate("a", "b", "friend").build()
        builder.relate("b", "c", "friend")
        assert graph.has_relationship("b", "c", "friend")  # same underlying graph


class TestGraphFromEdges:
    def test_basic(self):
        graph = graph_from_edges([("a", "b", "friend"), ("b", "c", "colleague")])
        assert graph.number_of_users() == 3
        assert graph.number_of_relationships() == 2

    def test_with_node_attributes(self):
        graph = graph_from_edges(
            [("a", "b", "friend")],
            node_attributes={"a": {"age": 33}},
        )
        assert graph.attribute("a", "age") == 33

    def test_with_symmetric_labels(self):
        graph = graph_from_edges([("a", "b", "friend")], symmetric_labels=["friend"])
        assert graph.has_relationship("b", "a", "friend")

    def test_name_is_kept(self):
        graph = graph_from_edges([("a", "b", "friend")], name="office")
        assert graph.name == "office"
