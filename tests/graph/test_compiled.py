"""Unit tests for the compiled CSR snapshot layer (`repro.graph.compiled`)."""

from __future__ import annotations

import pytest

from repro.datasets.paper_graph import paper_graph
from repro.exceptions import NodeNotFoundError
from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.generators import preferential_attachment_graph
from repro.policy.path_expression import PathExpression
from repro.reachability import available_backends, create_evaluator
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.workloads.queries import random_query_mix


def expr(text):
    return PathExpression.parse(text)


class TestSnapshotCorrectness:
    @pytest.fixture
    def snapshot(self, figure1):
        return compile_graph(figure1)

    def test_interning_roundtrip(self, figure1, snapshot):
        assert snapshot.number_of_nodes() == figure1.number_of_users()
        for user in figure1.users():
            assert snapshot.user_of(snapshot.index_of(user)) == user
        assert snapshot.labels == figure1.labels()
        for label in figure1.labels():
            assert snapshot.labels[snapshot.label_id(label)] == label
        assert snapshot.label_id("no-such-label") == -1

    def test_unknown_user_raises(self, snapshot):
        with pytest.raises(NodeNotFoundError):
            snapshot.index_of("Ghost")

    def test_csr_adjacency_matches_graph(self, figure1, snapshot):
        for user in figure1.users():
            index = snapshot.index_of(user)
            for label in figure1.labels() + (None,):
                label_id = None if label is None else snapshot.label_id(label)
                out = {snapshot.user_of(i) for i in snapshot.out_neighbors(index, label_id)}
                assert out == set(figure1.successors(user, label)), (user, label)
                incoming = {snapshot.user_of(i) for i in snapshot.in_neighbors(index, label_id)}
                assert incoming == set(figure1.predecessors(user, label)), (user, label)

    def test_degrees_match_graph(self, figure1, snapshot):
        for user in figure1.users():
            index = snapshot.index_of(user)
            for label in figure1.labels():
                label_id = snapshot.label_id(label)
                assert snapshot.out_degree(index, label_id) == figure1.out_degree(user, label)
                assert snapshot.in_degree(index, label_id) == figure1.in_degree(user, label)

    def test_attributes_are_shared_live(self, figure1, snapshot):
        index = snapshot.index_of("Alice")
        assert snapshot.attributes_of(index) == figure1.attributes("Alice")
        figure1.attributes("Alice")["quirk"] = 1
        assert snapshot.attributes_of(index)["quirk"] == 1

    def test_relationship_lookup(self, figure1, snapshot):
        for rel in figure1.relationships():
            rebuilt = snapshot.relationship(
                snapshot.index_of(rel.source),
                snapshot.index_of(rel.target),
                snapshot.label_id(rel.label),
            )
            assert rebuilt is rel

    def test_empty_graph_compiles(self, empty_graph):
        snapshot = compile_graph(empty_graph)
        assert snapshot.number_of_nodes() == 0
        assert snapshot.number_of_labels() == 0


class TestEpochInvalidation:
    def test_snapshot_is_cached_until_mutation(self, figure1):
        first = compile_graph(figure1)
        assert compile_graph(figure1) is first
        figure1.add_user("Zoe")
        assert first.is_stale()
        # The journal covers the one-mutation gap, so the refresh patches
        # the cached snapshot in place instead of rebuilding it.
        second = compile_graph(figure1)
        assert second is first and not second.is_stale()
        assert "Zoe" in second.node_index

    def test_snapshot_is_rebuilt_without_a_journal(self, figure1):
        figure1.journal_limit = 0
        first = compile_graph(figure1)
        figure1.add_user("Zoe")
        second = compile_graph(figure1)
        assert second is not first
        assert "Zoe" in second.node_index and "Zoe" not in first.node_index

    @pytest.mark.parametrize("mutate", [
        lambda g: g.add_user("Zoe"),
        lambda g: g.add_relationship("Alice", "Bill", "parent"),
        lambda g: g.remove_relationship("Alice", "Bill", "friend"),
        lambda g: g.remove_user("George"),
        lambda g: g.update_user("Alice", age=99),
        lambda g: g.ensure_user("Alice", age=99),
    ])
    def test_every_mutation_bumps_the_epoch(self, figure1, mutate):
        before = figure1.epoch
        mutate(figure1)
        assert figure1.epoch > before

    def test_queries_observe_mutations(self, figure1):
        evaluator = OnlineBFSEvaluator(figure1)
        assert not evaluator.evaluate("Alice", "George", expr("colleague+[1]")).reachable
        figure1.add_relationship("Alice", "George", "colleague")
        assert evaluator.evaluate("Alice", "George", expr("colleague+[1]")).reachable
        figure1.remove_relationship("Alice", "George", "colleague")
        assert not evaluator.evaluate("Alice", "George", expr("colleague+[1]")).reachable

    def test_attribute_updates_invalidate_condition_memos(self, figure1):
        evaluator = OnlineDFSEvaluator(figure1)
        adult = expr("friend+[1]{age >= 18}")
        assert evaluator.evaluate("Alice", "Colin", adult).reachable
        evaluator.evaluate("Alice", "Colin", adult)  # warm the memo
        figure1.update_user("Colin", age=10)
        assert not evaluator.evaluate("Alice", "Colin", adult).reachable


class TestBackendEquivalenceThroughCompiledGraph:
    """All four backends over the paper graph, against the dict-BFS oracle."""

    @pytest.mark.parametrize("backend", available_backends())
    def test_paper_graph_decisions(self, backend):
        graph = paper_graph()
        oracle = OnlineBFSEvaluator(graph, compiled=False)
        candidate = create_evaluator(backend, graph)
        queries = random_query_mix(graph, 40, seed=123, max_steps=2, max_depth=3,
                                   condition_probability=0.25)
        for source, target, expression in queries:
            expected = oracle.evaluate(source, target, expression,
                                       collect_witness=False).reachable
            actual = candidate.evaluate(source, target, expression,
                                        collect_witness=False).reachable
            assert actual == expected, (backend, source, target, expression.to_text())

    @pytest.mark.parametrize("backend", ["bfs", "dfs"])
    def test_compiled_witnesses_are_valid(self, backend):
        graph = preferential_attachment_graph(70, edges_per_node=3, seed=11)
        evaluator = create_evaluator(backend, graph)
        queries = random_query_mix(graph, 30, seed=17, max_steps=2, max_depth=2,
                                   condition_probability=0.1)
        for source, target, expression in queries:
            result = evaluator.evaluate(source, target, expression, collect_witness=True)
            if not result.reachable:
                continue
            witness = result.witness
            assert witness.start == source and witness.end == target
            assert expression.min_length() <= len(witness) <= expression.max_length()
            for traversal in witness:
                rel = traversal.relationship
                assert graph.has_relationship(rel.source, rel.target, rel.label)

    def test_find_targets_matches_dict_traversal(self):
        graph = preferential_attachment_graph(70, edges_per_node=3, seed=19)
        legacy = OnlineBFSEvaluator(graph, compiled=False)
        compiled_bfs = OnlineBFSEvaluator(graph)
        compiled_dfs = OnlineDFSEvaluator(graph)
        for text in ("friend+[1,2]", "friend*[1,2]", "colleague-[1]/friend+[1,2]",
                     "friend+[1,3]{age >= 18}"):
            expression = expr(text)
            for source in sorted(graph.users(), key=str)[:8]:
                expected = legacy.find_targets(source, expression)
                assert compiled_bfs.find_targets(source, expression) == expected
                assert compiled_dfs.find_targets(source, expression) == expected


class TestDegreeStatistics:
    def test_stats_match_the_graph(self, figure1):
        snapshot = compile_graph(figure1)
        stats = snapshot.degree_statistics()
        assert tuple(row.label for row in stats) == figure1.labels()
        users = list(figure1.users())
        for row in stats:
            assert row.edges == figure1.number_of_relationships(row.label)
            assert row.mean_degree == pytest.approx(row.edges / len(users))
            assert row.max_out_degree == max(
                figure1.out_degree(user, row.label) for user in users
            )
            assert row.max_in_degree == max(
                figure1.in_degree(user, row.label) for user in users
            )

    def test_cached_in_derived_and_refreshed_on_mutation(self, figure1):
        snapshot = compile_graph(figure1)
        stats = snapshot.degree_statistics()
        assert snapshot.degree_statistics() is stats  # cached per snapshot
        assert "degree_statistics" in snapshot.derived
        figure1.add_user("late-arrival")
        refreshed = compile_graph(figure1)
        assert refreshed is snapshot  # patched in place (journal-covered)
        fresh_stats = refreshed.degree_statistics()
        assert fresh_stats is not stats  # per-row means track the new |V|
        users = list(figure1.users())
        for row in fresh_stats:
            assert row.mean_degree == pytest.approx(row.edges / len(users))

    def test_empty_graph(self, empty_graph):
        assert compile_graph(empty_graph).degree_statistics() == ()
