"""Delta maintenance of the compiled snapshot: journal + apply_deltas.

The correctness bar for incremental snapshot maintenance is *observational
equivalence*: after any journal-covered mutation burst, the patched snapshot
must be indistinguishable from a snapshot compiled from scratch — same node
and label interning contracts, identical per-label forward/reverse adjacency
(as decoded user-id sets; CSR row order is not part of the contract), the
same merged adjacency, the same degree statistics, and identical answers
from all four reachability backends.

The seeded property harness below applies >= 250 random mutation journals
(edge adds/removes including self-loops and brand-new labels, attribute
writes through both ``update_user`` and the live ``AttributeMap``, user
adds, user removals — which tombstone the slot in place — and remove/re-add
bursts that exercise slot reuse) to random base graphs and asserts exactly
that, plus the fallback paths: journal overflow must abandon the patch and
rebuild, and a pinned snapshot must never be patched at all.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.compiled import CompiledGraph, compile_graph
from repro.graph.social_graph import SocialGraph
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.workloads.queries import random_expression

LABELS = ("friend", "colleague", "parent")
#: Labels a mutation burst may introduce that the base graph never uses —
#: exercising post-build label interning.
LATE_LABELS = ("mentor", "neighbor")

JOURNAL_SEEDS = range(250)
MUTATIONS_PER_JOURNAL = 14
BACKEND_CHECK_EVERY = 10  # every 10th seed also differentials the backends


def test_seed_budget_meets_the_acceptance_floor():
    """The harness must cover at least 250 seeded mutation journals."""
    assert len(JOURNAL_SEEDS) >= 250


def random_base_graph(rng: random.Random) -> SocialGraph:
    graph = SocialGraph(name="delta-base")
    count = rng.randint(3, 8)
    for i in range(count):
        graph.add_user(f"u{i}", age=rng.randint(10, 70))
    users = [f"u{i}" for i in range(count)]
    for _ in range(rng.randint(0, 2 * count)):
        source = rng.choice(users)
        target = source if rng.random() < 0.15 else rng.choice(users)
        label = rng.choice(LABELS)
        if not graph.has_relationship(source, target, label):
            graph.add_relationship(source, target, label)
    return graph


def apply_random_mutations(
    rng: random.Random,
    graph: SocialGraph,
    count: int,
    *,
    allow_remove_user: bool = False,
) -> None:
    """Drive ``count`` committed mutations through the public graph API."""
    applied = 0
    while applied < count:
        users = list(graph.users())
        roll = rng.random()
        if roll < 0.30:
            source = rng.choice(users)
            target = source if rng.random() < 0.2 else rng.choice(users)
            label = rng.choice(LABELS + LATE_LABELS if rng.random() < 0.2 else LABELS)
            if graph.has_relationship(source, target, label):
                continue
            graph.add_relationship(source, target, label)
        elif roll < 0.50:
            relationships = list(graph.relationships())
            if not relationships:
                continue
            rel = rng.choice(relationships)
            graph.remove_relationship(rel.source, rel.target, rel.label)
        elif roll < 0.75:
            user = rng.choice(users)
            if rng.random() < 0.5:
                graph.update_user(user, age=rng.randint(10, 70))
            else:
                graph.attributes(user)["age"] = rng.randint(10, 70)
        elif roll < 0.90 or not allow_remove_user:
            graph.add_user(f"late{graph.epoch}", age=rng.randint(10, 70))
        else:
            if len(users) <= 2:
                continue  # keep the graph interesting
            graph.remove_user(rng.choice(users))
        applied += 1


def decoded_adjacency(snapshot: CompiledGraph, label_id, *, backward=False):
    """Per-user sorted neighbor-id lists for one label (or the merged view).

    Tombstoned slots hold no user and must also hold no edges — asserted
    here rather than skipped silently.
    """
    reader = snapshot.in_neighbors if backward else snapshot.out_neighbors
    dead = snapshot.dead_slots
    decoded = {}
    for index in range(snapshot.number_of_nodes()):
        row = reader(index, label_id)
        if index in dead:
            assert len(row) == 0, f"tombstoned slot {index} still has edges"
            continue
        decoded[snapshot.node_ids[index]] = sorted(
            str(snapshot.node_ids[n]) for n in row
        )
    return decoded


def assert_snapshots_equivalent(patched: CompiledGraph, fresh: CompiledGraph):
    assert set(patched.node_index) == set(fresh.node_index)
    assert patched.number_of_live_nodes() == len(patched.node_index)
    assert patched.number_of_live_nodes() == fresh.number_of_live_nodes()
    dead = patched.dead_slots
    for user, index in patched.node_index.items():
        assert patched.node_ids[index] == user
        assert index not in dead
        assert patched.attrs[index] == fresh.attrs[fresh.index_of(user)]
    # Label interning is append-only across patches: a label whose last edge
    # was removed lingers with an empty CSR (observationally equivalent to
    # an absent label) until the next full rebuild.
    assert set(fresh.labels) <= set(patched.labels)
    for label in set(patched.labels) - set(fresh.labels):
        label_id = patched.label_id(label)
        assert patched.number_of_edges(label_id) == 0, label
    for label in fresh.labels:
        patched_id = patched.label_id(label)
        fresh_id = fresh.label_id(label)
        for backward in (False, True):
            assert decoded_adjacency(patched, patched_id, backward=backward) == (
                decoded_adjacency(fresh, fresh_id, backward=backward)
            ), (label, backward)
        # CSR structural invariants survive patching + compaction.
        offsets, targets = patched.forward(patched_id)
        assert len(offsets) == patched.number_of_nodes() + 1
        assert offsets[-1] == len(targets)
    for backward in (False, True):
        assert decoded_adjacency(patched, None, backward=backward) == (
            decoded_adjacency(fresh, None, backward=backward)
        )
    patched_stats = {row.label: row for row in patched.degree_statistics()}
    fresh_stats = {row.label: row for row in fresh.degree_statistics()}
    assert set(fresh_stats) <= set(patched_stats)
    for label in set(patched_stats) - set(fresh_stats):
        row = patched_stats[label]
        assert (row.edges, row.max_out_degree, row.max_in_degree) == (0, 0, 0)
    for label, row in fresh_stats.items():
        got = patched_stats[label]
        assert got.edges == row.edges, label
        assert got.mean_degree == pytest.approx(row.mean_degree), label
        assert got.max_out_degree == row.max_out_degree, label
        assert got.max_in_degree == row.max_in_degree, label


def assert_backends_agree_after_patch(rng: random.Random, graph: SocialGraph):
    """All four backends over the patched snapshot vs a from-scratch oracle."""
    oracle = OnlineBFSEvaluator(graph.copy())  # fresh graph, fresh snapshot
    contenders = {
        "bfs": OnlineBFSEvaluator(graph),
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
    }
    users = sorted(graph.users())
    for _ in range(3):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _pair in range(3):
            source, target = rng.choice(users), rng.choice(users)
            expected = oracle.evaluate(
                source, target, expression, collect_witness=False
            ).reachable
            for name, backend in contenders.items():
                got = backend.evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                assert got == expected, (name, source, target, expression.to_text())
        owners = rng.sample(users, min(3, len(users)))
        expected_many = {
            owner: oracle.find_targets(owner, expression) for owner in owners
        }
        for name, backend in contenders.items():
            assert backend.find_targets_many(owners, expression) == expected_many, (
                name, owners, expression.to_text()
            )


@pytest.mark.parametrize("seed", JOURNAL_SEEDS)
def test_patched_snapshot_equals_fresh_compile(seed):
    rng = random.Random(90_000 + seed)
    graph = random_base_graph(rng)
    snapshot = compile_graph(graph)
    snapshot.degree_statistics()  # warm the partial-refresh path too
    apply_random_mutations(rng, graph, MUTATIONS_PER_JOURNAL)

    patched = compile_graph(graph)
    assert patched is snapshot, "journal-covered burst must patch in place"
    assert not patched.is_stale()
    assert patched.delta_events["applies"] >= 1

    assert_snapshots_equivalent(patched, CompiledGraph(graph))
    if seed % BACKEND_CHECK_EVERY == 0:
        assert_backends_agree_after_patch(rng, graph)


@pytest.mark.parametrize("seed", range(25))
def test_user_removal_tombstones_the_slot_in_place(seed):
    """The inverse of the pre-tombstone contract: removals patch, not rebuild."""
    rng = random.Random(91_000 + seed)
    graph = random_base_graph(rng)
    snapshot = compile_graph(graph)
    apply_random_mutations(rng, graph, 6)
    graph.remove_user(rng.choice(list(graph.users())))
    apply_random_mutations(rng, graph, 4)

    patched = compile_graph(graph)
    assert patched is snapshot, "remove_user must tombstone in place"
    assert not patched.is_stale()
    assert patched.delta_events["applies"] >= 1
    assert patched.delta_events["tombstones"] >= 1
    assert patched.number_of_live_nodes() == graph.number_of_users()
    assert_snapshots_equivalent(patched, CompiledGraph(graph))


@pytest.mark.parametrize("seed", JOURNAL_SEEDS)
def test_remove_heavy_churn_patches_in_place(seed):
    """The 250-seed harness, removals enabled: tombstoned == fresh-compiled."""
    rng = random.Random(93_000 + seed)
    graph = random_base_graph(rng)
    snapshot = compile_graph(graph)
    snapshot.degree_statistics()  # warm the partial-refresh path too
    apply_random_mutations(
        rng, graph, MUTATIONS_PER_JOURNAL, allow_remove_user=True
    )

    patched = compile_graph(graph)
    assert patched is snapshot, "removal-bearing burst must patch in place"
    assert not patched.is_stale()
    assert_snapshots_equivalent(patched, CompiledGraph(graph))
    if seed % BACKEND_CHECK_EVERY == 0:
        assert_backends_agree_after_patch(rng, graph)


@pytest.mark.parametrize("seed", range(25))
def test_remove_then_readd_reuses_the_slot(seed):
    rng = random.Random(94_000 + seed)
    graph = random_base_graph(rng)
    snapshot = compile_graph(graph)
    victim = rng.choice(list(graph.users()))
    slot = snapshot.node_index[victim]
    graph.remove_user(victim)
    newcomer = f"fresh{seed}"
    graph.add_user(newcomer, age=rng.randint(10, 70))
    others = [user for user in graph.users() if user != newcomer]
    for target in rng.sample(others, min(2, len(others))):
        graph.add_relationship(newcomer, target, rng.choice(LABELS))

    patched = compile_graph(graph)
    assert patched is snapshot
    assert patched.node_index[newcomer] == slot, "freed slot must be reused"
    assert patched.delta_events["slot_reuses"] >= 1
    assert patched.number_of_live_nodes() == graph.number_of_users()
    assert not patched.dead_slots
    assert_snapshots_equivalent(patched, CompiledGraph(graph))
    assert_backends_agree_after_patch(rng, graph)


@pytest.mark.parametrize("seed", range(25))
def test_interleaved_remove_readd_bursts(seed):
    """Same user id leaving and returning (with new edges) across one burst."""
    rng = random.Random(95_000 + seed)
    graph = random_base_graph(rng)
    snapshot = compile_graph(graph)
    for _ in range(3):
        victim = rng.choice(list(graph.users()))
        graph.remove_user(victim)
        graph.add_user(victim, age=rng.randint(10, 70))
        others = [user for user in graph.users() if user != victim]
        if others:
            graph.add_relationship(victim, rng.choice(others), rng.choice(LABELS))
        apply_random_mutations(rng, graph, 2, allow_remove_user=True)

    patched = compile_graph(graph)
    assert patched is snapshot
    assert_snapshots_equivalent(patched, CompiledGraph(graph))
    if seed % 5 == 0:
        assert_backends_agree_after_patch(rng, graph)


@pytest.mark.parametrize("seed", range(25))
def test_journal_overflow_falls_back_to_a_full_rebuild(seed):
    rng = random.Random(92_000 + seed)
    graph = random_base_graph(rng)
    graph.journal_limit = 8
    snapshot = compile_graph(graph)
    apply_random_mutations(rng, graph, 20)
    # Attribute writes compact, so the random burst alone no longer
    # guarantees overflow: structural ops (one entry each, never merged) do.
    for i in range(graph.journal_limit + 1):
        graph.add_user(f"overflow{i}")

    assert graph.mutations_since(snapshot.epoch) is None
    rebuilt = compile_graph(graph)
    assert rebuilt is not snapshot
    assert_snapshots_equivalent(rebuilt, CompiledGraph(graph))
    # The new snapshot re-enters the delta regime for covered bursts.
    apply_random_mutations(rng, graph, 4)
    assert compile_graph(graph) is rebuilt


class TestJournalContract:
    def test_mutations_since_returns_the_exact_tail(self):
        graph = SocialGraph()
        graph.add_user("a")
        mark = graph.epoch
        graph.add_user("b")
        graph.add_relationship("a", "b", "friend")
        assert graph.mutations_since(mark) == [
            ("add_user", "b"),
            ("add_edge", "a", "b", "friend"),
        ]
        assert graph.mutations_since(graph.epoch) == []

    def test_attribute_map_writes_are_journaled_and_coalesced(self):
        graph = SocialGraph()
        graph.add_user("a", age=1)
        mark = graph.epoch
        attrs = graph.attributes("a")
        attrs["age"] = 2
        del attrs["age"]
        # Repeated attribute writes to one user compact into a single
        # invalidation marker (the op carries no payload, so one replay
        # invalidates exactly as much as two would).
        assert graph.mutations_since(mark) == [("update_user", "a")]
        assert graph.epoch == mark + 2  # every write still bumps the epoch

    def test_attribute_compaction_stretches_the_journal_limit(self):
        graph = SocialGraph(journal_limit=4)
        for user in ("a", "b"):
            graph.add_user(user, age=0)
        mark = graph.epoch
        # 50 writes across two users: an uncompacted journal (limit 4) would
        # have overflowed long ago; the compacting one holds two entries.
        for round_ in range(25):
            graph.update_user("a", age=round_)
            graph.update_user("b", age=round_)
        assert graph.mutations_since(mark) == [
            ("update_user", "a"),
            ("update_user", "b"),
        ]
        snapshot = compile_graph(graph)
        graph.update_user("a", age=99)
        assert compile_graph(graph) is snapshot  # still delta-patchable

    def test_compaction_keeps_structural_ops_in_order(self):
        graph = SocialGraph(journal_limit=8)
        graph.add_user("a", age=0)
        mark = graph.epoch
        graph.update_user("a", age=1)
        graph.add_user("b")
        graph.add_relationship("a", "b", "friend")
        graph.update_user("a", age=2)  # merges: marker floats to the young end
        # Structural ops keep their relative commit order; the coalesced
        # attribute marker commutes with them and rides at the young end
        # (where overflow eviction cannot take coverage with it).
        assert graph.mutations_since(mark) == [
            ("add_user", "b"),
            ("add_edge", "a", "b", "friend"),
            ("update_user", "a"),
        ]
        # A span starting after the first write still sees the marker (its
        # floated epoch proves at least one merged bump is inside the span).
        assert graph.mutations_since(mark + 1) == [
            ("add_user", "b"),
            ("add_edge", "a", "b", "friend"),
            ("update_user", "a"),
        ]

    def test_evicting_a_merged_marker_does_not_wipe_coverage(self):
        """Overflow after a merge must pop the tombstoned old slot for free.

        If the merge floated the entry's epoch *in place*, evicting that
        (leftmost) slot would advance the floor past every retained entry
        and collapse exactly the attribute-hot span compaction exists to
        keep covered.
        """
        graph = SocialGraph(journal_limit=8)
        graph.add_user("a", age=0)
        graph.update_user("a", age=1)  # the entry that will merge later
        for i in range(7):
            graph.add_user(f"s{i}")  # structural ops fill the deque
        mark = graph.epoch
        snapshot = compile_graph(graph)
        graph.update_user("a", age=2)  # merges: the old slot is tombstoned
        graph.add_user("b")  # overflow: must evict dead weight, not coverage
        assert graph.mutations_since(mark) == [
            ("update_user", "a"),
            ("add_user", "b"),
        ]
        assert compile_graph(graph) is snapshot  # still delta-patchable

    def test_remove_and_readd_closes_the_merge_anchor(self):
        graph = SocialGraph()
        graph.add_user("a", age=0)
        graph.update_user("a", age=1)
        graph.remove_user("a")
        mark_after_removal = graph.epoch
        graph.add_user("a", age=2)
        graph.update_user("a", age=3)
        # The post-re-add write must appear *after* the add, not float the
        # pre-removal marker into the span.
        assert graph.mutations_since(mark_after_removal) == [
            ("add_user", "a"),
            ("update_user", "a"),
        ]

    def test_foreign_or_future_epochs_are_not_covered(self):
        graph = SocialGraph()
        graph.add_user("a")
        assert graph.mutations_since(graph.epoch + 5) is None

    def test_journal_limit_zero_disables_coverage(self):
        graph = SocialGraph(journal_limit=0)
        graph.add_user("a")
        mark = graph.epoch
        graph.add_user("b")
        assert graph.mutations_since(mark) is None
        assert graph.mutations_since(graph.epoch) == []

    def test_reconfiguring_the_limit_resets_coverage(self):
        graph = SocialGraph()
        graph.add_user("a")
        mark = graph.epoch
        graph.add_user("b")
        graph.journal_limit = 16
        assert graph.mutations_since(mark) is None  # pre-reset span is gone
        graph.add_user("c")
        assert graph.mutations_since(graph.epoch - 1) == [("add_user", "c")]

    def test_bumps_that_bypass_the_journal_break_coverage(self):
        graph = SocialGraph()
        graph.add_user("a")
        mark = graph.epoch
        graph.add_user("b")
        graph._epoch += 1  # simulate a buggy mutation path
        assert graph.mutations_since(mark) is None


class TestDerivedInvalidationPolicies:
    def _graph(self):
        graph = SocialGraph()
        for user in ("a", "b", "c"):
            graph.add_user(user, age=30)
        graph.add_relationship("a", "b", "friend")
        graph.add_relationship("b", "c", "friend")
        return graph

    def test_attribute_only_patch_keeps_the_line_index(self):
        from repro.reachability.interned import interned_line_index

        graph = self._graph()
        index = interned_line_index(graph)
        graph.attributes("b")["age"] = 55
        assert interned_line_index(graph) is index  # structural policy: kept

    def test_edge_patch_drops_the_line_index(self):
        from repro.reachability.interned import interned_line_index

        graph = self._graph()
        index = interned_line_index(graph)
        graph.add_relationship("c", "a", "colleague")
        rebuilt = interned_line_index(graph)
        assert rebuilt is not index
        assert rebuilt.snapshot is index.snapshot  # same patched snapshot

    def test_attribute_only_patch_keeps_degree_statistics_identity(self):
        graph = self._graph()
        snapshot = compile_graph(graph)
        stats = snapshot.degree_statistics()
        graph.update_user("a", age=31)
        assert compile_graph(graph) is snapshot
        assert snapshot.degree_statistics() is stats

    def test_edge_patch_refreshes_only_the_touched_label_row(self):
        graph = self._graph()
        graph.add_relationship("a", "c", "colleague")
        snapshot = compile_graph(graph)
        stats = snapshot.degree_statistics()
        friend_row = stats[snapshot.label_id("friend")]
        graph.add_relationship("c", "b", "colleague")
        assert compile_graph(graph) is snapshot
        refreshed = snapshot.degree_statistics()
        assert refreshed is not stats
        assert refreshed[snapshot.label_id("friend")] is friend_row  # untouched
        colleague = refreshed[snapshot.label_id("colleague")]
        assert colleague.edges == 2

    def test_unregistered_entries_are_dropped_even_by_attribute_patches(self):
        graph = self._graph()
        snapshot = compile_graph(graph)
        snapshot.derived["probe"] = object()
        graph.update_user("a", age=32)
        assert compile_graph(graph) is snapshot
        assert "probe" not in snapshot.derived


class TestPinnedSnapshots:
    def test_pinned_snapshots_are_never_patched(self):
        graph = SocialGraph()
        for user in ("a", "b"):
            graph.add_user(user)
        graph.add_relationship("a", "b", "friend")
        snapshot = compile_graph(graph).pin()
        graph.add_user("c")
        rebuilt = compile_graph(graph)
        assert rebuilt is not snapshot
        assert "c" not in snapshot.node_index  # the pinned structure is frozen
        assert "c" in rebuilt.node_index
        assert not rebuilt.pinned  # the replacement re-enters the delta regime

    def test_cluster_build_pins_its_snapshot(self):
        graph = SocialGraph()
        for user in ("a", "b"):
            graph.add_user(user)
        graph.add_relationship("a", "b", "friend")
        evaluator = ClusterIndexEvaluator(graph).build()
        assert evaluator._index.snapshot.pinned
        build_time = evaluator._index.snapshot
        # Delta maintenance for the online backends must not disturb the
        # cluster backend's frozen build-time structure.
        graph.add_user("c")
        graph.add_relationship("b", "c", "friend")
        live = compile_graph(graph)
        assert live is not build_time
        assert "c" not in build_time.node_index
        from repro.policy.path_expression import PathExpression

        expression = PathExpression.parse("friend+[1,2]")
        # Stale-read semantics: the post-build edge stays invisible, and the
        # per-owner and batched paths agree on that.
        assert evaluator.find_targets("a", expression) == {"b"}
        assert evaluator.find_targets_many(["a", "c"], expression) == {
            "a": {"b"},
            "c": set(),
        }
