"""Unit tests for the synthetic social-network generators."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    AttributeModel,
    LabelDistribution,
    forest_fire_graph,
    layered_organization_graph,
    preferential_attachment_graph,
    random_graph,
    small_world_graph,
)

GENERATORS = [
    lambda n, seed: random_graph(n, edge_probability=0.08, seed=seed),
    lambda n, seed: preferential_attachment_graph(n, edges_per_node=2, seed=seed),
    lambda n, seed: small_world_graph(n, nearest_neighbors=4, seed=seed),
    lambda n, seed: forest_fire_graph(n, seed=seed),
]


@pytest.mark.parametrize("generator", GENERATORS)
class TestCommonGeneratorContract:
    def test_requested_number_of_users(self, generator):
        graph = generator(40, 1)
        assert graph.number_of_users() == 40

    def test_deterministic_for_a_seed(self, generator):
        assert generator(30, 5) == generator(30, 5)

    def test_different_seeds_differ(self, generator):
        first, second = generator(30, 5), generator(30, 6)
        assert first != second

    def test_no_self_loops(self, generator):
        graph = generator(40, 2)
        assert all(rel.source != rel.target for rel in graph.relationships())

    def test_users_have_attribute_tuples(self, generator):
        graph = generator(20, 3)
        for user in graph.users():
            attrs = graph.attributes(user)
            assert {"age", "gender", "city", "job"} <= set(attrs)
            assert 13 <= attrs["age"] <= 80

    def test_edges_carry_labels_and_trust(self, generator):
        graph = generator(40, 4)
        assert graph.number_of_relationships() > 0
        for rel in graph.relationships():
            assert rel.label in {"friend", "colleague", "parent"}
            assert 0.0 < rel.attributes["trust"] <= 1.0

    def test_single_user_graph(self, generator):
        graph = generator(1, 0)
        assert graph.number_of_users() == 1
        assert graph.number_of_relationships() == 0


class TestCrossProcessDeterminism:
    """Generated graphs must not depend on the per-process string-hash seed."""

    SCRIPT = (
        "import sys, hashlib; sys.path.insert(0, 'src');"
        "from repro.graph.generators import preferential_attachment_graph;"
        "from repro.graph.io import to_edge_list;"
        "g = preferential_attachment_graph(80, edges_per_node=3, seed=5);"
        "print(hashlib.sha256(to_edge_list(g).encode()).hexdigest())"
    )

    def test_same_graph_under_different_hash_seeds(self):
        import os
        import subprocess
        import sys
        from pathlib import Path

        repo_root = Path(__file__).resolve().parents[2]
        digests = set()
        for hash_seed in ("1", "2"):
            env = dict(os.environ, PYTHONHASHSEED=hash_seed)
            completed = subprocess.run(
                [sys.executable, "-c", self.SCRIPT],
                cwd=repo_root,
                env=env,
                capture_output=True,
                text=True,
                check=True,
            )
            digests.add(completed.stdout.strip())
        assert len(digests) == 1


class TestLabelDistribution:
    def test_default_alphabet(self):
        assert LabelDistribution().labels() == ("colleague", "friend", "parent")

    def test_custom_weights_respected(self, rng):
        dist = LabelDistribution({"follows": 1.0})
        assert all(dist.sample(rng) == "follows" for _ in range(20))

    def test_sampling_covers_all_labels(self, rng):
        dist = LabelDistribution({"a": 1.0, "b": 1.0})
        drawn = {dist.sample(rng) for _ in range(200)}
        assert drawn == {"a", "b"}


class TestAttributeModel:
    def test_ranges(self, rng):
        model = AttributeModel(min_age=20, max_age=25, genders=("x",))
        for _ in range(50):
            attrs = model.sample(rng)
            assert 20 <= attrs["age"] <= 25
            assert attrs["gender"] == "x"


class TestSpecificShapes:
    def test_preferential_attachment_has_hubs(self):
        graph = preferential_attachment_graph(200, edges_per_node=3, seed=11)
        degrees = sorted((graph.degree(user) for user in graph.users()), reverse=True)
        # Scale-free-ish: the top node has several times the median degree.
        assert degrees[0] >= 4 * max(1, degrees[len(degrees) // 2])

    def test_custom_label_distribution_flows_through(self):
        graph = random_graph(
            30,
            edge_probability=0.2,
            labels=LabelDistribution({"follows": 1.0}),
            seed=3,
        )
        assert graph.labels() == ("follows",)

    def test_layered_organization_structure(self):
        graph = layered_organization_graph(departments=3, members_per_department=4, seed=1)
        managers = [user for user in graph.users() if graph.attribute(user, "role") == "manager"]
        members = [user for user in graph.users() if graph.attribute(user, "role") == "member"]
        assert len(managers) == 3
        assert len(members) == 12
        for manager in managers:
            assert graph.out_degree(manager, "manages") == 4
        assert "friend" in graph.labels()

    def test_layered_organization_colleagues_are_mutual(self):
        graph = layered_organization_graph(departments=1, members_per_department=3, seed=2)
        members = [user for user in graph.users() if graph.attribute(user, "role") == "member"]
        for first in members:
            for second in members:
                if first != second:
                    assert graph.has_relationship(first, second, "colleague")
