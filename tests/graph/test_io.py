"""Unit tests for graph serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.io import (
    from_edge_list,
    from_json,
    load_edge_list,
    load_json,
    save_json,
    to_edge_list,
    to_json,
)


class TestJson:
    def test_round_trip(self, figure1):
        assert from_json(to_json(figure1)) == figure1

    def test_round_trip_keeps_attributes(self, tiny_graph):
        restored = from_json(to_json(tiny_graph))
        assert restored.attribute("a", "age") == 30
        assert restored == tiny_graph

    def test_file_round_trip(self, tmp_path, figure1):
        path = tmp_path / "graph.json"
        save_json(figure1, path)
        assert load_json(path) == figure1

    def test_invalid_json_raises(self):
        with pytest.raises(GraphFormatError):
            from_json("{not json")

    def test_wrong_shape_raises(self):
        with pytest.raises(GraphFormatError):
            from_json("[1, 2, 3]")

    def test_malformed_relationship_raises(self):
        document = '{"users": {"a": {}}, "relationships": [{"source": "a"}]}'
        with pytest.raises(GraphFormatError):
            from_json(document)

    def test_relationship_endpoints_created_on_demand(self):
        document = (
            '{"users": {}, "relationships": '
            '[{"source": "a", "target": "b", "label": "friend"}]}'
        )
        graph = from_json(document)
        assert graph.has_relationship("a", "b", "friend")

    def test_output_is_deterministic(self, figure1):
        assert to_json(figure1) == to_json(figure1)


class TestEdgeList:
    def test_round_trip_structure(self, figure1):
        text = to_edge_list(figure1)
        restored = from_edge_list(text)
        assert restored.number_of_users() == figure1.number_of_users()
        assert {rel.key() for rel in restored.relationships()} == {
            rel.key() for rel in figure1.relationships()
        }

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\na b friend\nb c colleague\n"
        graph = from_edge_list(text)
        assert graph.number_of_relationships() == 2

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            from_edge_list("a b friend\nbroken line here extra\n")
        assert "line 2" in str(excinfo.value)

    def test_duplicate_lines_collapse(self):
        graph = from_edge_list("a b friend\na b friend\n")
        assert graph.number_of_relationships() == 1

    def test_empty_graph_serializes_to_empty_string(self, empty_graph):
        assert to_edge_list(empty_graph) == ""

    def test_accepts_iterable_of_lines(self):
        graph = from_edge_list(["a b friend", "b c friend"])
        assert graph.number_of_relationships() == 2


class TestLoadEdgeList:
    """The SNAP-style two-column loader (labels supplied by the caller)."""

    def _write(self, tmp_path, text):
        path = tmp_path / "edges.txt"
        path.write_text(text, encoding="utf-8")
        return path

    def test_two_column_pairs_get_the_supplied_label(self, tmp_path):
        path = self._write(tmp_path, "# SNAP header\n1 2\n2 3\n")
        graph = load_edge_list(path, label="colleague")
        assert graph.number_of_users() == 3
        assert graph.has_relationship("1", "2", "colleague")
        assert not graph.has_relationship("2", "1", "colleague")

    def test_undirected_mode_adds_both_directions(self, tmp_path):
        path = self._write(tmp_path, "1 2\n")
        graph = load_edge_list(path, directed=False)
        assert graph.has_relationship("1", "2", "friend")
        assert graph.has_relationship("2", "1", "friend")

    def test_three_column_lines_keep_their_label(self, tmp_path):
        path = self._write(tmp_path, "1 2\n2 3 parent\n")
        graph = load_edge_list(path, label="friend")
        assert graph.has_relationship("1", "2", "friend")
        assert graph.has_relationship("2", "3", "parent")

    def test_bad_column_count_raises_with_line_number(self, tmp_path):
        path = self._write(tmp_path, "1 2\n1 2 3 4\n")
        with pytest.raises(GraphFormatError) as excinfo:
            load_edge_list(path)
        assert "line 2" in str(excinfo.value)

    def test_comments_blanks_and_duplicates(self, tmp_path):
        path = self._write(tmp_path, "# c\n% konect-style\n\n1 2\n1 2\n")
        graph = load_edge_list(path)
        assert graph.number_of_relationships() == 1

    def test_default_name_is_the_file_stem(self, tmp_path):
        path = self._write(tmp_path, "1 2\n")
        assert load_edge_list(path).name == "edges"

    def test_bom_prefixed_header_is_still_a_comment(self, tmp_path):
        # A UTF-8 BOM before the KONECT "%" header used to hide the comment
        # marker and crash the parse on the header's token count.
        path = tmp_path / "edges.txt"
        path.write_bytes("\ufeff% sym unweighted\n1 2\n".encode("utf-8"))
        graph = load_edge_list(path)
        assert graph.number_of_users() == 2
        assert graph.has_relationship("1", "2", "friend")

    def test_crlf_lines_parse_cleanly(self, tmp_path):
        path = tmp_path / "edges.txt"
        path.write_bytes(b"# header\r\n1 2\r\n2 3\r\n")
        graph = load_edge_list(path)
        assert graph.number_of_users() == 3
        assert graph.has_relationship("2", "3", "friend")

    def test_four_column_konect_line_raises_with_line_number(self, tmp_path):
        # KONECT TSV bodies carry "src dst weight timestamp" rows; the
        # loader must refuse them by name rather than misread the weight
        # column as a label.
        path = self._write(
            tmp_path, "% konect header\n1 2\n2 3 1 1167609600\n"
        )
        with pytest.raises(GraphFormatError) as excinfo:
            load_edge_list(path)
        assert "line 3" in str(excinfo.value)
        assert "1167609600" in str(excinfo.value)

    def test_bundled_karate_club_fixture(self):
        from repro.datasets import KARATE_CLUB_PATH, karate_club

        graph = load_edge_list(KARATE_CLUB_PATH, directed=False)
        assert graph.number_of_users() == 34
        assert graph.number_of_relationships() == 156  # 78 undirected pairs
        assert karate_club().number_of_relationships() == 156
        assert karate_club(directed=True).number_of_relationships() == 78
