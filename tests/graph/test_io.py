"""Unit tests for graph serialization."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphFormatError
from repro.graph.io import (
    from_edge_list,
    from_json,
    load_json,
    save_json,
    to_edge_list,
    to_json,
)


class TestJson:
    def test_round_trip(self, figure1):
        assert from_json(to_json(figure1)) == figure1

    def test_round_trip_keeps_attributes(self, tiny_graph):
        restored = from_json(to_json(tiny_graph))
        assert restored.attribute("a", "age") == 30
        assert restored == tiny_graph

    def test_file_round_trip(self, tmp_path, figure1):
        path = tmp_path / "graph.json"
        save_json(figure1, path)
        assert load_json(path) == figure1

    def test_invalid_json_raises(self):
        with pytest.raises(GraphFormatError):
            from_json("{not json")

    def test_wrong_shape_raises(self):
        with pytest.raises(GraphFormatError):
            from_json("[1, 2, 3]")

    def test_malformed_relationship_raises(self):
        document = '{"users": {"a": {}}, "relationships": [{"source": "a"}]}'
        with pytest.raises(GraphFormatError):
            from_json(document)

    def test_relationship_endpoints_created_on_demand(self):
        document = (
            '{"users": {}, "relationships": '
            '[{"source": "a", "target": "b", "label": "friend"}]}'
        )
        graph = from_json(document)
        assert graph.has_relationship("a", "b", "friend")

    def test_output_is_deterministic(self, figure1):
        assert to_json(figure1) == to_json(figure1)


class TestEdgeList:
    def test_round_trip_structure(self, figure1):
        text = to_edge_list(figure1)
        restored = from_edge_list(text)
        assert restored.number_of_users() == figure1.number_of_users()
        assert {rel.key() for rel in restored.relationships()} == {
            rel.key() for rel in figure1.relationships()
        }

    def test_comments_and_blank_lines_ignored(self):
        text = "# a comment\n\na b friend\nb c colleague\n"
        graph = from_edge_list(text)
        assert graph.number_of_relationships() == 2

    def test_bad_line_raises_with_line_number(self):
        with pytest.raises(GraphFormatError) as excinfo:
            from_edge_list("a b friend\nbroken line here extra\n")
        assert "line 2" in str(excinfo.value)

    def test_duplicate_lines_collapse(self):
        graph = from_edge_list("a b friend\na b friend\n")
        assert graph.number_of_relationships() == 1

    def test_empty_graph_serializes_to_empty_string(self, empty_graph):
        assert to_edge_list(empty_graph) == ""

    def test_accepts_iterable_of_lines(self):
        graph = from_edge_list(["a b friend", "b c friend"])
        assert graph.number_of_relationships() == 2
