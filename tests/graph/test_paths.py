"""Unit tests for Path / Traversal and the adjacency-chain helper."""

from __future__ import annotations

import pytest

from repro.exceptions import GraphError
from repro.graph.paths import Path, Traversal, is_adjacent_chain, path_from_nodes
from repro.graph.social_graph import Relationship, SocialGraph


@pytest.fixture
def chain_graph():
    g = SocialGraph()
    for user in "abcd":
        g.add_user(user)
    g.add_relationship("a", "b", "friend")
    g.add_relationship("b", "c", "friend")
    g.add_relationship("c", "d", "colleague")
    return g


class TestTraversal:
    def test_forward_traversal_endpoints(self):
        rel = Relationship("a", "b", "friend")
        hop = Traversal(rel, forward=True)
        assert hop.start == "a" and hop.end == "b" and hop.label == "friend"

    def test_backward_traversal_endpoints(self):
        rel = Relationship("a", "b", "friend")
        hop = Traversal(rel, forward=False)
        assert hop.start == "b" and hop.end == "a"

    def test_str_shows_direction(self):
        rel = Relationship("a", "b", "friend")
        assert "->" in str(Traversal(rel, True))
        assert "<-" in str(Traversal(rel, False))


class TestPath:
    def test_empty_path(self):
        path = Path("a")
        assert path.start == "a" and path.end == "a"
        assert len(path) == 0
        assert path.nodes() == ["a"]
        assert bool(path)

    def test_contiguous_path(self, chain_graph):
        path = path_from_nodes(chain_graph, ["a", "b", "c", "d"])
        assert path.start == "a" and path.end == "d"
        assert path.nodes() == ["a", "b", "c", "d"]
        assert path.labels() == ["friend", "friend", "colleague"]
        assert len(path) == 3

    def test_non_contiguous_path_raises(self):
        hops = (
            Traversal(Relationship("a", "b", "friend")),
            Traversal(Relationship("c", "d", "friend")),
        )
        with pytest.raises(GraphError):
            Path("a", hops)

    def test_path_start_mismatch_raises(self):
        with pytest.raises(GraphError):
            Path("x", (Traversal(Relationship("a", "b", "friend")),))

    def test_label_runs(self, chain_graph):
        path = path_from_nodes(chain_graph, ["a", "b", "c", "d"])
        assert path.label_runs() == [("friend", 2), ("colleague", 1)]

    def test_is_simple(self, chain_graph):
        path = path_from_nodes(chain_graph, ["a", "b", "c"])
        assert path.is_simple()
        # Build a path that revisits b through backward traversals.
        rel_ab = chain_graph.get_relationship("a", "b", "friend")
        revisit = Path("a", (Traversal(rel_ab, True), Traversal(rel_ab, False), Traversal(rel_ab, True)))
        assert not revisit.is_simple()

    def test_concat(self, chain_graph):
        first = path_from_nodes(chain_graph, ["a", "b"])
        second = path_from_nodes(chain_graph, ["b", "c", "d"])
        combined = first.concat(second)
        assert combined.nodes() == ["a", "b", "c", "d"]

    def test_concat_mismatch_raises(self, chain_graph):
        first = path_from_nodes(chain_graph, ["a", "b"])
        third = path_from_nodes(chain_graph, ["c", "d"])
        with pytest.raises(GraphError):
            first.concat(third)

    def test_extended(self, chain_graph):
        path = path_from_nodes(chain_graph, ["a", "b"])
        rel = chain_graph.get_relationship("b", "c", "friend")
        longer = path.extended(Traversal(rel))
        assert longer.nodes() == ["a", "b", "c"]
        assert path.nodes() == ["a", "b"]  # original untouched

    def test_equality_and_hash(self, chain_graph):
        first = path_from_nodes(chain_graph, ["a", "b", "c"])
        second = path_from_nodes(chain_graph, ["a", "b", "c"])
        assert first == second
        assert hash(first) == hash(second)
        assert first != path_from_nodes(chain_graph, ["a", "b"])


class TestHelpers:
    def test_is_adjacent_chain_true(self):
        edges = [Relationship("a", "b", "x"), Relationship("b", "c", "y"), Relationship("c", "d", "z")]
        assert is_adjacent_chain(edges)

    def test_is_adjacent_chain_false(self):
        edges = [Relationship("a", "b", "x"), Relationship("c", "d", "y")]
        assert not is_adjacent_chain(edges)

    def test_is_adjacent_chain_trivial_cases(self):
        assert is_adjacent_chain([])
        assert is_adjacent_chain([Relationship("a", "b", "x")])

    def test_path_from_nodes_with_labels(self, chain_graph):
        path = path_from_nodes(chain_graph, ["a", "b", "c"], labels=["friend", "friend"])
        assert path.labels() == ["friend", "friend"]

    def test_path_from_nodes_label_count_mismatch(self, chain_graph):
        with pytest.raises(GraphError):
            path_from_nodes(chain_graph, ["a", "b", "c"], labels=["friend"])

    def test_path_from_nodes_missing_edge(self, chain_graph):
        with pytest.raises(GraphError):
            path_from_nodes(chain_graph, ["a", "c"])

    def test_path_from_nodes_empty(self, chain_graph):
        with pytest.raises(GraphError):
            path_from_nodes(chain_graph, [])
