"""Persistent snapshot store: round-trip property harness + failure modes.

The safety net for the PERF-11 mmap format.  The core is a seeded
differential harness (same idiom as ``tests/property/test_backend_
equivalence.py``): 100+ random graphs are compiled, saved, memory-mapped
back, and every reachability backend answering from the mapped snapshot
must agree exactly with one answering from a fresh in-memory compile —
``evaluate`` decisions and ``find_targets`` audiences alike.

Around it: delta-segment replay (one and many segments, attribute
payloads), the staleness contract (adoption refuses epochs the journal
cannot cover — ``journal_limit = 0`` forces the gap), torn-write and
corruption cases (always a typed :class:`SnapshotFormatError`, never a raw
``struct.error``), the ``GraphService`` warm-start wiring, and a fork-based
smoke test of one mapping shared across processes.
"""

from __future__ import annotations

import json
import multiprocessing
import os
import random
import struct
import sys

import pytest

from repro.exceptions import SnapshotFormatError, SnapshotStaleError
from repro.graph.compiled import compile_graph
from repro.graph.snapshot import (
    SnapshotStore,
    load_snapshot,
    read_snapshot_header,
    save_snapshot,
)
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.compiled_search import CompiledAutomaton, audience_sweep
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.workloads.queries import random_expression

LABELS = ("friend", "colleague", "parent")
GRAPH_SEEDS = range(25)
EXPRESSIONS_PER_GRAPH = 4
PAIRS_PER_EXPRESSION = 3


def random_social_graph(rng: random.Random) -> SocialGraph:
    """Small random labelled graph: self-loops, multi-label edges, islands."""
    graph = SocialGraph(name="snapshot-differential")
    count = rng.randint(3, 9)
    users = [f"u{i}" for i in range(count)]
    for user in users:
        graph.add_user(
            user,
            age=rng.randint(10, 70),
            gender=rng.choice(["female", "male"]),
        )
    for _ in range(rng.randint(0, 2 * count)):
        source = rng.choice(users)
        target = source if rng.random() < 0.15 else rng.choice(users)
        label = rng.choice(LABELS)
        if not graph.has_relationship(source, target, label):
            graph.add_relationship(source, target, label)
    return graph


def _mutate(graph: SocialGraph, rng: random.Random, ops: int) -> None:
    """A journal-coverable churn burst (no removals)."""
    users = sorted(graph.users())
    for _ in range(ops):
        kind = rng.random()
        if kind < 0.3:
            user = f"n{graph.number_of_users()}_{rng.randint(0, 999)}"
            graph.add_user(user, age=rng.randint(10, 70))
            users.append(user)
        elif kind < 0.6:
            graph.update_user(rng.choice(users), age=rng.randint(10, 70))
        else:
            source, target = rng.choice(users), rng.choice(users)
            label = rng.choice(LABELS)
            if graph.has_relationship(source, target, label):
                graph.remove_relationship(source, target, label)
            else:
                graph.add_relationship(source, target, label)


def _backends(graph):
    return {
        "bfs": OnlineBFSEvaluator(graph),
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
    }


def _rebuild(graph: SocialGraph) -> SocialGraph:
    """A structurally identical graph replayed in one deterministic pass.

    Replaying add_user/add_relationship in the original interning order
    yields the same epoch, which is how an independent worker process
    arrives at a graph the persisted snapshot can be adopted into.
    """
    clone = SocialGraph(name=graph.name)
    for user in graph.users():
        clone.add_user(user, **dict(graph.attributes(user)))
    for rel in graph.relationships():
        clone.add_relationship(rel.source, rel.target, rel.label)
    return clone


# ---------------------------------------------------------------------------
# The round-trip property harness (the acceptance-criteria floor)
# ---------------------------------------------------------------------------


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
@pytest.mark.parametrize("variant", ("plain", "delta", "stale"))
def test_mapped_snapshots_are_backend_equivalent(tmp_path, seed, variant):
    """save → mmap → every backend agrees with a fresh in-memory compile.

    ``plain``  round-trips the base file alone; ``delta`` checkpoints a
    churn burst into segments first; ``stale`` truncates the journal so the
    store must take the recompile-and-rewrite fallback — in every case the
    adopted snapshot must be *exactly* as fresh as a cold compile.
    """
    rng = random.Random(9_000 + seed)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    store.save(compile_graph(graph))

    if variant == "delta":
        _mutate(graph, rng, rng.randint(1, 6))
        assert store.checkpoint(graph) in ("delta", "rebase")
    elif variant == "stale":
        _mutate(graph, rng, rng.randint(1, 6))
        graph.journal_limit = 0  # drops the journal: the gap is uncoverable
        graph.journal_limit = 4096

    # ``plain`` adopts into an independently replayed graph (the worker-
    # process shape: pure-add history, same epoch); the churned variants
    # keep the original object — epochs are history-dependent, and a
    # replayed churn history is exactly what the ``stale`` path rejects.
    live = _rebuild(graph) if variant == "plain" else graph
    if variant == "stale":
        with pytest.raises((SnapshotStaleError, SnapshotFormatError)):
            store.load(live)
        snapshot, source = store.load_or_compile(live)
        assert source in ("stale", "corrupt")
        assert not snapshot.mapped
    else:
        snapshot = store.load(live)
        assert snapshot.mapped
    assert snapshot.epoch == live.epoch
    assert getattr(live, "_compiled_snapshot") is snapshot

    oracle_graph = _rebuild(graph)
    oracles = _backends(oracle_graph)
    contenders = _backends(live)
    users = sorted(graph.users())
    for _ in range(EXPRESSIONS_PER_GRAPH):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _ in range(PAIRS_PER_EXPRESSION):
            source, target = rng.choice(users), rng.choice(users)
            for name in oracles:
                expected = oracles[name].evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                got = contenders[name].evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                assert got == expected, (seed, variant, name, source, target,
                                         expression.to_text())
            source = rng.choice(users)
            for name in oracles:
                assert contenders[name].find_targets(source, expression) == \
                    oracles[name].find_targets(source, expression), (
                        seed, variant, name, source, expression.to_text())


def test_seed_budget_meets_the_acceptance_floor():
    """The harness must cover at least 100 seeded round-trip cases."""
    assert len(GRAPH_SEEDS) * 3 * EXPRESSIONS_PER_GRAPH >= 100


# ---------------------------------------------------------------------------
# Standalone (no live graph) loading
# ---------------------------------------------------------------------------


def test_standalone_load_answers_sweeps_without_a_graph(tmp_path):
    rng = random.Random(7)
    graph = random_social_graph(rng)
    snapshot = compile_graph(graph)
    path = tmp_path / "g.snap"
    save_snapshot(snapshot, path)

    loaded = load_snapshot(path)
    assert loaded.mapped and loaded.graph is None
    assert loaded.node_ids == snapshot.node_ids
    assert loaded.labels == snapshot.labels
    expression = PathExpression.parse("friend+[1,3]")
    sources = list(range(loaded.number_of_nodes()))
    got = audience_sweep(
        loaded, CompiledAutomaton(expression, loaded), sources, direction="forward"
    )
    expected = audience_sweep(
        snapshot, CompiledAutomaton(expression, snapshot), sources, direction="forward"
    )
    assert got.audiences == expected.audiences


def test_standalone_attribute_conditions_read_persisted_attrs(tmp_path):
    graph = SocialGraph()
    graph.add_user("a", age=24, gender="female")
    graph.add_user("b", age=61, gender="male")
    graph.add_relationship("a", "b", "friend")
    path = tmp_path / "g.snap"
    save_snapshot(compile_graph(graph), path)

    loaded = load_snapshot(path)
    expression = PathExpression.parse("friend+[1,1]{age < 30}")
    automaton = CompiledAutomaton(expression, loaded)
    sweep = audience_sweep(loaded, automaton, [0, 1], direction="forward")
    # b (age 61) fails the condition, so a's audience is empty; conditions
    # apply to traversed nodes, and b is the only candidate from a.
    assert list(sweep.audiences[0]) == []


def test_standalone_witness_edges_are_synthesized(tmp_path):
    graph = SocialGraph()
    for user in ("a", "b"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "b", "friend")
    path = tmp_path / "g.snap"
    save_snapshot(compile_graph(graph), path)
    loaded = load_snapshot(path)
    relationship = loaded.relationship(0, 1, loaded.label_index["friend"])
    assert (relationship.source, relationship.target, relationship.label) == \
        ("a", "b", "friend")


def test_nbytes_accounts_mapped_and_private_buffers(tmp_path):
    graph = random_social_graph(random.Random(3))
    snapshot = compile_graph(graph)
    path = tmp_path / "g.snap"
    save_snapshot(snapshot, path)
    loaded = load_snapshot(path)
    # Same CSR content → same buffer byte count, mapped or not.
    assert loaded.nbytes == snapshot.nbytes > 0
    assert path.stat().st_size > loaded.nbytes  # header + meta overhead


# ---------------------------------------------------------------------------
# Delta segments
# ---------------------------------------------------------------------------


def test_checkpoint_appends_contiguous_delta_segments(tmp_path):
    rng = random.Random(11)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    assert store.checkpoint(graph) == "base"
    assert store.checkpoint(graph) == "current"
    for expected_segments in (1, 2, 3):
        _mutate(graph, rng, 3)
        assert store.checkpoint(graph) == "delta"
        assert store.stat()["delta_segments"] == expected_segments
    assert store.tip_epoch() == graph.epoch
    loaded = store.load()
    assert loaded.epoch == graph.epoch
    assert loaded.number_of_nodes() == graph.number_of_users()


def test_persisted_update_user_payload_replays_standalone(tmp_path):
    graph = SocialGraph()
    graph.add_user("a", age=24)
    graph.add_user("b", age=30)
    graph.add_relationship("a", "b", "friend")
    store = SnapshotStore(tmp_path / "g.snap")
    store.checkpoint(graph)
    graph.update_user("b", age=99)
    assert store.checkpoint(graph) == "delta"
    loaded = store.load()  # no graph: attrs must come from the payload
    assert loaded.attrs[loaded.node_index["b"]]["age"] == 99


def test_user_removal_emits_a_delta_segment(tmp_path):
    graph = SocialGraph()
    for user in ("a", "b", "c"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "b", "friend")
    graph.add_relationship("b", "c", "friend")
    store = SnapshotStore(tmp_path / "g.snap")
    store.checkpoint(graph)
    graph.remove_user("c")
    assert store.checkpoint(graph) == "delta"
    assert store.stat()["delta_segments"] == 1
    # Standalone replay tombstones the slot: three dense slots, two users.
    loaded = store.load()
    assert loaded.number_of_nodes() == 3
    assert loaded.number_of_live_nodes() == 2
    assert set(loaded.node_index) == {"a", "b"}
    assert len(loaded.out_neighbors(loaded.node_index["b"])) == 0  # b->c gone
    assert len(loaded.out_neighbors(loaded.node_index["a"])) == 1  # a->b kept
    # Adoption into the live graph verifies structure against the live state.
    adopted = store.load(graph)
    assert set(adopted.node_index) == {"a", "b"}


def test_removal_bearing_delta_round_trip_with_slot_reuse(tmp_path):
    """remove + re-add in one persisted span: replay reuses the slot."""
    graph = SocialGraph()
    for user in ("a", "b", "c"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "b", "friend")
    graph.add_relationship("b", "c", "friend")
    store = SnapshotStore(tmp_path / "g.snap")
    store.checkpoint(graph)
    graph.remove_user("c")
    graph.add_user("d", age=41)
    graph.add_relationship("b", "d", "friend")
    graph.update_user("d", age=42)
    assert store.checkpoint(graph) == "delta"
    loaded = store.load()
    assert loaded.number_of_live_nodes() == 3
    assert set(loaded.node_index) == {"a", "b", "d"}
    assert loaded.attrs[loaded.node_index["d"]]["age"] == 42
    decoded = {
        loaded.node_ids[n]
        for n in loaded.out_neighbors(loaded.node_index["b"])
    }
    assert decoded == {"d"}
    # A post-replay save squeezes the tombstone out: fresh readers see a
    # dense, fully live snapshot.
    rebased = SnapshotStore(tmp_path / "rebased.snap")
    rebased.save(loaded)
    reread = rebased.load()
    assert reread.number_of_nodes() == reread.number_of_live_nodes() == 3


def test_segment_budget_triggers_a_rebase(tmp_path):
    rng = random.Random(13)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap", max_delta_segments=2)
    store.checkpoint(graph)
    for _ in range(2):
        _mutate(graph, rng, 2)
        assert store.checkpoint(graph) == "delta"
    _mutate(graph, rng, 2)
    assert store.checkpoint(graph) == "rebase"
    assert store.stat()["delta_segments"] == 0


def test_uncovered_journal_gap_forces_a_rebase(tmp_path):
    rng = random.Random(17)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    store.checkpoint(graph)
    _mutate(graph, rng, 2)
    graph.journal_limit = 0  # drop the journal: mutations_since → None
    graph.journal_limit = 4096
    assert store.checkpoint(graph) == "rebase"


# ---------------------------------------------------------------------------
# Staleness contract
# ---------------------------------------------------------------------------


def test_adoption_replays_the_live_journal_gap(tmp_path):
    rng = random.Random(19)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    store.save(compile_graph(graph))
    live = _rebuild(graph)
    _mutate(live, rng, 3)  # persisted state is behind, journal covers it
    snapshot = store.load(live)
    assert snapshot.mapped and snapshot.epoch == live.epoch
    assert not snapshot.is_stale()


def test_adoption_refuses_a_foreign_graph(tmp_path):
    graph = SocialGraph()
    for user in ("a", "b"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "b", "friend")
    store = SnapshotStore(tmp_path / "g.snap")
    store.save(compile_graph(graph))

    other = SocialGraph()
    for user in ("x", "y"):
        other.add_user(user, age=30)
    other.add_relationship("x", "y", "friend")
    with pytest.raises(SnapshotStaleError):
        store.load(other)


def test_adoption_refuses_an_uncoverable_epoch_gap(tmp_path):
    rng = random.Random(23)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    store.save(compile_graph(graph))
    live = _rebuild(graph)
    _mutate(live, rng, 3)
    live.journal_limit = 0
    live.journal_limit = 4096
    with pytest.raises(SnapshotStaleError) as excinfo:
        store.load(live)
    assert "journal" in str(excinfo.value)


# ---------------------------------------------------------------------------
# Torn writes / corruption: always typed, never struct.error
# ---------------------------------------------------------------------------


def _saved_store(tmp_path) -> SnapshotStore:
    graph = random_social_graph(random.Random(29))
    store = SnapshotStore(tmp_path / "g.snap")
    store.save(compile_graph(graph))
    return store


def test_truncated_header_raises_typed_error(tmp_path):
    store = _saved_store(tmp_path)
    data = store.base_path.read_bytes()
    store.base_path.write_bytes(data[:10])
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field == "size"


def test_torn_write_truncated_arrays_raises_typed_error(tmp_path):
    store = _saved_store(tmp_path)
    data = store.base_path.read_bytes()
    store.base_path.write_bytes(data[:-16])  # lost the tail of the CSR region
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field == "arrays"


def test_bad_magic_and_version_name_their_field(tmp_path):
    store = _saved_store(tmp_path)
    data = bytearray(store.base_path.read_bytes())
    original = bytes(data)
    data[:4] = b"NOPE"
    store.base_path.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field == "magic"

    data = bytearray(original)
    data[8:12] = struct.pack("<I", 999)  # version field
    # re-stamp the header crc so the version check (not the crc) fires
    import zlib
    header = bytes(data[:40])
    data[40:44] = struct.pack("<I", zlib.crc32(header) & 0xFFFFFFFF)
    store.base_path.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field == "version"


def test_flipped_header_bit_fails_the_header_crc(tmp_path):
    store = _saved_store(tmp_path)
    data = bytearray(store.base_path.read_bytes())
    data[16] ^= 0xFF  # somewhere inside the packed header
    store.base_path.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field in ("header_crc", "counts")


def test_corrupt_meta_fails_the_meta_crc(tmp_path):
    store = _saved_store(tmp_path)
    data = bytearray(store.base_path.read_bytes())
    data[60] ^= 0xFF  # inside the JSON metadata block
    store.base_path.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path)
    assert excinfo.value.field == "meta_crc"


def test_corrupt_arrays_detected_with_verify(tmp_path):
    store = _saved_store(tmp_path)
    data = bytearray(store.base_path.read_bytes())
    data[-8] ^= 0xFF  # inside the CSR region
    store.base_path.write_bytes(bytes(data))
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(store.base_path, verify=True)
    assert excinfo.value.field == "arrays_crc32"


def test_empty_file_raises_typed_error(tmp_path):
    path = tmp_path / "g.snap"
    path.write_bytes(b"")
    with pytest.raises(SnapshotFormatError) as excinfo:
        load_snapshot(path)
    assert excinfo.value.field == "size"


def test_corrupt_delta_segment_raises_typed_error(tmp_path):
    rng = random.Random(31)
    graph = random_social_graph(rng)
    store = SnapshotStore(tmp_path / "g.snap")
    store.checkpoint(graph)
    _mutate(graph, rng, 2)
    assert store.checkpoint(graph) == "delta"
    delta = store.delta_path(0)
    document = json.loads(delta.read_text())
    document["ops_crc32"] ^= 1
    delta.write_text(json.dumps(document))
    with pytest.raises(SnapshotFormatError) as excinfo:
        store.load()
    assert excinfo.value.field == "ops_crc32"


def test_load_or_compile_recovers_from_corruption(tmp_path):
    rng = random.Random(37)
    graph = random_social_graph(rng)
    store = _saved_store(tmp_path)
    with open(store.base_path, "r+b") as handle:
        handle.seek(16)
        handle.write(b"\xff" * 8)
    snapshot, source = store.load_or_compile(graph)
    assert source == "corrupt"
    assert snapshot is compile_graph(graph)
    # The store was rewritten clean: the next load maps again.
    assert store.load(_rebuild(graph)).mapped


def test_read_snapshot_header_is_a_cheap_probe(tmp_path):
    store = _saved_store(tmp_path)
    header = read_snapshot_header(store.base_path)
    assert header["epoch"] == store.tip_epoch()
    assert header["nodes"] > 0


# ---------------------------------------------------------------------------
# GraphService warm-start integration
# ---------------------------------------------------------------------------


def test_graph_service_warm_start_and_checkpoint(tmp_path):
    from repro import GraphService

    path = tmp_path / "service.snap"
    graph = random_social_graph(random.Random(41))
    service = GraphService(graph, snapshot_path=path)
    assert service.warm_start == "absent"  # first open compiles + writes
    service.refresh()
    assert service.last_checkpoint == "current"
    _mutate(graph, random.Random(43), 3)
    service.refresh()
    assert service.last_checkpoint in ("delta", "rebase")

    stats = service.statistics()
    assert stats["snapshot_nbytes"] > 0
    assert stats["snapshot_disk_bytes"] > 0

    warm = GraphService(_rebuild(graph), snapshot_path=path)
    assert warm.warm_start == "mapped"
    assert warm.statistics()["snapshot_mapped"] == 1.0


def test_graph_service_without_store_reports_cold(tmp_path):
    graph = random_social_graph(random.Random(47))
    from repro import GraphService

    service = GraphService(graph)
    assert service.warm_start == "cold"
    assert service.snapshot_store is None
    service.refresh()
    assert service.last_checkpoint is None
    assert "snapshot_disk_bytes" not in service.statistics()


# ---------------------------------------------------------------------------
# Multi-process smoke: one mapping, several workers
# ---------------------------------------------------------------------------


def _worker_sweep(path, expression_text, queue):
    snapshot = load_snapshot(path)
    expression = PathExpression.parse(expression_text)
    automaton = CompiledAutomaton(expression, snapshot)
    sweep = audience_sweep(
        snapshot,
        automaton,
        list(range(snapshot.number_of_nodes())),
        direction="forward",
    )
    queue.put([sorted(audience) for audience in sweep.audiences])


@pytest.mark.skipif(
    not hasattr(os, "fork"), reason="fork start-method not available"
)
def test_multiple_processes_share_one_mapping(tmp_path):
    graph = random_social_graph(random.Random(53))
    snapshot = compile_graph(graph)
    path = tmp_path / "shared.snap"
    save_snapshot(snapshot, path)

    expression = "friend+[1,3]"
    context = multiprocessing.get_context("fork")
    queue = context.Queue()
    workers = [
        context.Process(target=_worker_sweep, args=(str(path), expression, queue))
        for _ in range(3)
    ]
    for worker in workers:
        worker.start()
    results = [queue.get(timeout=30) for _ in workers]
    for worker in workers:
        worker.join(timeout=30)
        assert worker.exitcode == 0

    parsed = PathExpression.parse(expression)
    local = audience_sweep(
        snapshot,
        CompiledAutomaton(parsed, snapshot),
        list(range(snapshot.number_of_nodes())),
        direction="forward",
    )
    expected = [sorted(audience) for audience in local.audiences]
    assert all(result == expected for result in results)
