"""Unit tests for the SocialGraph data structure."""

from __future__ import annotations

import pytest

from repro.exceptions import (
    DuplicateEdgeError,
    DuplicateNodeError,
    EdgeNotFoundError,
    NodeNotFoundError,
)
from repro.graph.social_graph import Relationship, SocialGraph


@pytest.fixture
def graph():
    g = SocialGraph(name="unit")
    g.add_user("alice", age=24, gender="female")
    g.add_user("bob", age=30)
    g.add_user("carol")
    g.add_relationship("alice", "bob", "friend", trust=0.9)
    g.add_relationship("bob", "carol", "colleague")
    return g


class TestUsers:
    def test_add_and_contains(self, graph):
        assert graph.has_user("alice")
        assert "alice" in graph
        assert "dave" not in graph

    def test_add_duplicate_user_raises(self, graph):
        with pytest.raises(DuplicateNodeError):
            graph.add_user("alice")

    def test_ensure_user_is_idempotent_and_merges_attributes(self, graph):
        graph.ensure_user("alice", city="paris")
        assert graph.attribute("alice", "city") == "paris"
        assert graph.attribute("alice", "age") == 24
        graph.ensure_user("dave", age=40)
        assert graph.has_user("dave")

    def test_update_user_merges(self, graph):
        graph.update_user("bob", age=31, city="berlin")
        assert graph.attributes("bob") == {"age": 31, "city": "berlin"}

    def test_update_unknown_user_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.update_user("nobody", age=1)

    def test_attributes_of_unknown_user_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.attributes("nobody")

    def test_attribute_default(self, graph):
        assert graph.attribute("carol", "age") is None
        assert graph.attribute("carol", "age", 0) == 0

    def test_remove_user_removes_incident_edges(self, graph):
        graph.remove_user("bob")
        assert not graph.has_user("bob")
        assert graph.number_of_relationships() == 0
        assert not graph.has_relationship("alice", "bob", "friend")

    def test_remove_user_with_a_self_loop(self, graph):
        # Regression: the loop edge appears in both incidence lists and used
        # to be removed twice, raising EdgeNotFoundError on the second pass.
        graph.add_relationship("bob", "bob", "friend")
        graph.remove_user("bob")
        assert not graph.has_user("bob")
        assert graph.number_of_relationships() == 0

    def test_len_and_iter(self, graph):
        assert len(graph) == 3
        assert set(iter(graph)) == {"alice", "bob", "carol"}


class TestRelationships:
    def test_add_and_query(self, graph):
        assert graph.has_relationship("alice", "bob", "friend")
        assert graph.has_relationship("alice", "bob")  # any label
        assert not graph.has_relationship("bob", "alice", "friend")

    def test_relationship_attributes(self, graph):
        rel = graph.get_relationship("alice", "bob", "friend")
        assert rel.attributes["trust"] == pytest.approx(0.9)
        assert rel.label == "friend"

    def test_parallel_edges_with_different_labels(self, graph):
        graph.add_relationship("alice", "bob", "colleague")
        assert graph.has_relationship("alice", "bob", "friend")
        assert graph.has_relationship("alice", "bob", "colleague")
        assert graph.number_of_relationships() == 3

    def test_duplicate_edge_same_label_raises(self, graph):
        with pytest.raises(DuplicateEdgeError):
            graph.add_relationship("alice", "bob", "friend")

    def test_edge_to_unknown_user_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            graph.add_relationship("alice", "nobody", "friend")
        with pytest.raises(NodeNotFoundError):
            graph.add_relationship("nobody", "alice", "friend")

    def test_reciprocal_adds_both_directions(self, graph):
        graph.add_relationship("alice", "carol", "friend", reciprocal=True)
        assert graph.has_relationship("alice", "carol", "friend")
        assert graph.has_relationship("carol", "alice", "friend")

    def test_remove_relationship(self, graph):
        graph.remove_relationship("alice", "bob", "friend")
        assert not graph.has_relationship("alice", "bob", "friend")
        assert graph.number_of_relationships() == 1

    def test_remove_missing_relationship_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.remove_relationship("alice", "carol", "friend")

    def test_get_missing_relationship_raises(self, graph):
        with pytest.raises(EdgeNotFoundError):
            graph.get_relationship("alice", "carol", "friend")

    def test_labels_are_sorted(self, graph):
        assert graph.labels() == ("colleague", "friend")

    def test_label_counts_update_on_removal(self, graph):
        graph.remove_relationship("bob", "carol", "colleague")
        assert graph.number_of_relationships("colleague") == 0
        assert "colleague" not in graph.labels()


class TestNeighborhoods:
    def test_successors_and_predecessors(self, graph):
        assert set(graph.successors("alice")) == {"bob"}
        assert set(graph.predecessors("carol")) == {"bob"}
        assert set(graph.successors("bob", "colleague")) == {"carol"}
        assert set(graph.successors("bob", "friend")) == set()

    def test_neighbors_deduplicates(self, graph):
        graph.add_relationship("bob", "alice", "colleague")
        assert set(graph.neighbors("alice")) == {"bob"}

    def test_out_in_relationships_filtered_by_label(self, graph):
        out = list(graph.out_relationships("alice", "friend"))
        assert len(out) == 1 and out[0].target == "bob"
        assert list(graph.out_relationships("alice", "colleague")) == []
        incoming = list(graph.in_relationships("carol"))
        assert len(incoming) == 1 and incoming[0].source == "bob"

    def test_degrees(self, graph):
        assert graph.out_degree("alice") == 1
        assert graph.in_degree("alice") == 0
        assert graph.degree("bob") == 2
        assert graph.out_degree("bob", "colleague") == 1

    def test_neighborhood_of_unknown_user_raises(self, graph):
        with pytest.raises(NodeNotFoundError):
            list(graph.successors("nobody"))


class TestCopiesAndViews:
    def test_copy_is_deep_structurally(self, graph):
        clone = graph.copy()
        assert clone == graph
        clone.add_user("dave")
        clone.add_relationship("dave", "alice", "friend")
        assert not graph.has_user("dave")

    def test_equality_ignores_name(self, graph):
        clone = graph.copy(name="other-name")
        assert clone == graph

    def test_subgraph_keeps_only_induced_edges(self, graph):
        sub = graph.subgraph(["alice", "bob"])
        assert set(sub.users()) == {"alice", "bob"}
        assert sub.has_relationship("alice", "bob", "friend")
        assert sub.number_of_relationships() == 1

    def test_subgraph_ignores_unknown_users(self, graph):
        sub = graph.subgraph(["alice", "nobody"])
        assert set(sub.users()) == {"alice"}

    def test_reversed_flips_every_edge(self, graph):
        reversed_graph = graph.reversed()
        assert reversed_graph.has_relationship("bob", "alice", "friend")
        assert reversed_graph.has_relationship("carol", "bob", "colleague")
        assert reversed_graph.number_of_relationships() == graph.number_of_relationships()

    def test_repr_mentions_counts(self, graph):
        text = repr(graph)
        assert "3 users" in text and "2 relationships" in text


class TestNetworkxInterop:
    def test_round_trip_through_networkx(self, graph):
        nx_graph = graph.to_networkx()
        back = SocialGraph.from_networkx(nx_graph)
        assert back == graph

    def test_from_networkx_uses_default_label(self):
        import networkx as nx

        nx_graph = nx.DiGraph()
        nx_graph.add_edge("a", "b")
        graph = SocialGraph.from_networkx(nx_graph, default_label="knows")
        assert graph.has_relationship("a", "b", "knows")


class TestRelationshipValue:
    def test_key_and_reversed(self):
        rel = Relationship("a", "b", "friend", {"trust": 0.5})
        assert rel.key() == ("a", "b", "friend")
        back = rel.reversed()
        assert back.source == "b" and back.target == "a" and back.label == "friend"

    def test_str(self):
        assert str(Relationship("a", "b", "friend")) == "a -[friend]-> b"
