"""Unit tests for graph statistics."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.statistics import (
    average_degree,
    connected_component_sizes,
    degree_distribution,
    estimate_effective_diameter,
    label_distribution,
    summarize,
)


class TestDegreeDistribution:
    def test_out_degree_histogram(self, tiny_graph):
        histogram = degree_distribution(tiny_graph, "out")
        # a has 2 outgoing edges, b and c have 1, d has 0.
        assert histogram == {2: 1, 1: 2, 0: 1}

    def test_in_degree_histogram(self, tiny_graph):
        histogram = degree_distribution(tiny_graph, "in")
        assert histogram == {0: 1, 1: 2, 2: 1}

    def test_total_histogram_sums_users(self, figure1):
        histogram = degree_distribution(figure1, "total")
        assert sum(histogram.values()) == figure1.number_of_users()

    def test_invalid_direction_raises(self, tiny_graph):
        with pytest.raises(ValueError):
            degree_distribution(tiny_graph, "sideways")


class TestSimpleAggregates:
    def test_label_distribution(self, figure1):
        assert label_distribution(figure1) == {"friend": 8, "colleague": 2, "parent": 2}

    def test_average_degree(self, tiny_graph):
        assert average_degree(tiny_graph) == pytest.approx(1.0)

    def test_average_degree_empty(self, empty_graph):
        assert average_degree(empty_graph) == 0.0


class TestComponents:
    def test_single_component(self, figure1):
        assert connected_component_sizes(figure1) == [7]

    def test_two_components(self):
        graph = GraphBuilder().relate("a", "b", "friend").relate("x", "y", "friend").build()
        assert connected_component_sizes(graph) == [2, 2]

    def test_isolated_users_are_their_own_component(self):
        builder = GraphBuilder().user("lonely")
        builder.relate("a", "b", "friend")
        assert sorted(connected_component_sizes(builder.build())) == [1, 2]

    def test_empty_graph(self, empty_graph):
        assert connected_component_sizes(empty_graph) == []


class TestDiameter:
    def test_chain_diameter(self):
        graph = GraphBuilder().chain(list("abcdef"), "friend").build()
        estimate = estimate_effective_diameter(graph, samples=6, percentile=1.0)
        assert estimate == pytest.approx(5.0)

    def test_too_small_graph_returns_none(self, empty_graph):
        assert estimate_effective_diameter(empty_graph) is None
        single = GraphBuilder().user("a").build()
        assert estimate_effective_diameter(single) is None


class TestSummary:
    def test_summary_fields(self, figure1):
        summary = summarize(figure1)
        assert summary.users == 7
        assert summary.relationships == 12
        assert summary.labels == ("colleague", "friend", "parent")
        assert summary.weakly_connected_components == 1
        assert summary.largest_component_size == 7
        assert summary.max_out_degree == 3
        assert summary.average_out_degree == pytest.approx(12 / 7)

    def test_as_dict_round_trips_to_json(self, figure1):
        import json

        payload = summarize(figure1).as_dict()
        assert json.loads(json.dumps(payload)) == payload
