"""Unit tests for filtered graph views."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.graph.views import GraphView, label_view, trust_view, user_filter_view


@pytest.fixture
def graph():
    builder = GraphBuilder()
    builder.user("a", age=30).user("b", age=16).user("c", age=45).user("d", age=28)
    builder.relate("a", "b", "friend", trust=0.9)
    builder.relate("b", "c", "friend", trust=0.2)
    builder.relate("a", "c", "colleague", trust=0.7)
    builder.relate("c", "d", "parent")
    return builder.build()


class TestLabelView:
    def test_only_matching_labels_visible(self, graph):
        view = label_view(graph, "friend")
        assert view.number_of_relationships() == 2
        assert {rel.label for rel in view.relationships()} == {"friend"}

    def test_multiple_labels(self, graph):
        view = label_view(graph, "friend", "parent")
        assert view.number_of_relationships() == 3

    def test_out_relationships_filtered(self, graph):
        view = label_view(graph, "friend")
        assert [rel.target for rel in view.out_relationships("a")] == ["b"]

    def test_successors_and_predecessors(self, graph):
        view = label_view(graph, "colleague")
        assert set(view.successors("a")) == {"c"}
        assert set(view.predecessors("c")) == {"a"}

    def test_all_users_remain_visible(self, graph):
        view = label_view(graph, "parent")
        assert view.number_of_users() == 4


class TestTrustView:
    def test_low_trust_edges_hidden(self, graph):
        view = trust_view(graph, minimum_trust=0.5)
        kept = {rel.key() for rel in view.relationships()}
        assert ("b", "c", "friend") not in kept
        assert ("a", "b", "friend") in kept

    def test_missing_trust_counts_as_full_trust(self, graph):
        view = trust_view(graph, minimum_trust=0.99)
        kept = {rel.key() for rel in view.relationships()}
        assert ("c", "d", "parent") in kept


class TestUserFilterView:
    def test_filtered_users_disappear_with_their_edges(self, graph):
        adults = user_filter_view(graph, lambda _user, attrs: attrs.get("age", 0) >= 18)
        assert set(adults.users()) == {"a", "c", "d"}
        assert not adults.has_user("b")
        # Edges touching b are invisible.
        assert {rel.key() for rel in adults.relationships()} == {
            ("a", "c", "colleague"),
            ("c", "d", "parent"),
        }

    def test_successors_respect_user_filter(self, graph):
        adults = user_filter_view(graph, lambda _user, attrs: attrs.get("age", 0) >= 18)
        assert set(adults.successors("a")) == {"c"}


class TestMaterialize:
    def test_materialize_produces_standalone_graph(self, graph):
        view = label_view(graph, "friend")
        copy = view.materialize(name="friends-only")
        assert copy.number_of_relationships() == 2
        assert copy.name == "friends-only"
        # Mutating the copy does not affect the original.
        copy.add_user("zz")
        assert not graph.has_user("zz")

    def test_unfiltered_view_equals_original(self, graph):
        view = GraphView(graph)
        assert view.number_of_users() == graph.number_of_users()
        assert view.number_of_relationships() == graph.number_of_relationships()
