"""Cross-backend equivalence on larger synthetic graphs (seeded, deterministic)."""

from __future__ import annotations

import pytest

from repro.graph.generators import (
    forest_fire_graph,
    preferential_attachment_graph,
    random_graph,
    small_world_graph,
)
from repro.reachability import available_backends, create_evaluator
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.workloads.queries import random_query_mix

GRAPHS = {
    "erdos-renyi": lambda: random_graph(50, edge_probability=0.06, seed=31),
    "barabasi-albert": lambda: preferential_attachment_graph(60, edges_per_node=2, seed=32),
    "watts-strogatz": lambda: small_world_graph(50, nearest_neighbors=4, seed=33),
    "forest-fire": lambda: forest_fire_graph(45, seed=34),
}

INDEX_BACKENDS = [name for name in available_backends() if name != "bfs"]


@pytest.fixture(scope="module")
def graphs():
    return {name: factory() for name, factory in GRAPHS.items()}


@pytest.mark.parametrize("family", sorted(GRAPHS))
@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_backends_agree_on_random_query_mixes(graphs, family, backend):
    graph = graphs[family]
    oracle = OnlineBFSEvaluator(graph)
    candidate = create_evaluator(backend, graph)
    queries = random_query_mix(graph, 30, seed=hash((family, backend)) % 10_000,
                               max_steps=2, max_depth=2, condition_probability=0.15)
    for source, target, expression in queries:
        expected = oracle.evaluate(source, target, expression, collect_witness=False).reachable
        actual = candidate.evaluate(source, target, expression, collect_witness=False).reachable
        assert actual == expected, (family, backend, source, target, expression.to_text())


@pytest.mark.parametrize("backend", INDEX_BACKENDS)
def test_audiences_agree_for_scenario_expressions(graphs, backend):
    from repro.policy import PathExpression
    from repro.workloads.scenarios import SCENARIOS

    graph = graphs["barabasi-albert"]
    oracle = OnlineBFSEvaluator(graph)
    candidate = create_evaluator(backend, graph)
    owners = sorted(graph.users())[:5]
    for scenario in SCENARIOS.values():
        for text in scenario.expressions:
            expression = PathExpression.parse(text)
            if expression.expansion_count() > 16:
                continue
            for owner in owners:
                assert candidate.find_targets(owner, expression) == oracle.find_targets(
                    owner, expression
                ), (scenario.name, owner, backend)


@pytest.mark.parametrize("backend", available_backends())
def test_witnesses_are_always_valid_paths(graphs, backend):
    graph = graphs["watts-strogatz"]
    evaluator = create_evaluator(backend, graph)
    queries = random_query_mix(graph, 20, seed=77, max_steps=2, max_depth=2,
                               condition_probability=0.0)
    for source, target, expression in queries:
        result = evaluator.evaluate(source, target, expression, collect_witness=True)
        if not result.reachable:
            continue
        witness = result.witness
        assert witness is not None
        assert witness.start == source and witness.end == target
        assert expression.min_length() <= len(witness) <= expression.max_length()
        for traversal in witness:
            rel = traversal.relationship
            assert graph.has_relationship(rel.source, rel.target, rel.label)
