"""End-to-end integration tests: graph + policy + reachability + audit together."""

from __future__ import annotations

import pytest

from repro import (
    AccessControlEngine,
    AuditLog,
    CarminatiEngine,
    CarminatiRule,
    PolicyStore,
)
from repro.graph.generators import layered_organization_graph, preferential_attachment_graph
from repro.graph.io import from_json, to_json
from repro.policy.administration import analyze_policy
from repro.reachability import available_backends
from repro.workloads.generator import WorkloadSpec, build_workload
from repro.workloads.scenarios import SCENARIOS


class TestPhotoSharingLifecycle:
    """A full lifecycle: build a network, share, protect, request, audit, revoke."""

    def test_lifecycle(self, figure1):
        audit = AuditLog()
        store = PolicyStore()
        engine = AccessControlEngine(figure1, store, audit_log=audit)

        # Alice shares an album, initially unprotected: only she can see it.
        store.share("Alice", "album", kind="photos", title="holidays")
        assert engine.is_allowed("Alice", "album")
        assert not engine.is_allowed("Bill", "album")

        # She opens it to friends and friends of friends.
        rule = store.allow("album", "friend+[1,2]", description="friends circle")
        assert engine.is_allowed("Bill", "album")
        assert engine.is_allowed("David", "album")
        assert not engine.is_allowed("Fred", "album")

        # The policy is clean according to the administration tooling.
        assert analyze_policy(store, figure1).is_clean()

        # She changes her mind and revokes the rule: back to private.
        store.remove_rule(rule.rule_id)
        assert not engine.is_allowed("Bill", "album")

        # Every request so far has been audited.
        assert len(audit) == 6
        assert audit.requests_per_resource() == {"album": 6}

    def test_graph_evolution_is_reflected_immediately(self, figure1):
        """Online backends see new relationships without any rebuild."""
        store = PolicyStore()
        store.share("Alice", "doc")
        store.allow("doc", "friend+[1]")
        engine = AccessControlEngine(figure1, store, backend="bfs")
        assert not engine.is_allowed("Elena", "doc")
        figure1.add_relationship("Alice", "Elena", "friend")
        assert engine.is_allowed("Elena", "doc")


class TestEnterpriseScenario:
    """The layered-organization example: managers, departments, cross-team friends."""

    @pytest.fixture
    def organization(self):
        return layered_organization_graph(departments=3, members_per_department=5, seed=13)

    def test_department_wide_sharing(self, organization):
        manager = "emp-d0-mgr"
        store = PolicyStore()
        store.share(manager, "roadmap", kind="document")
        store.allow("roadmap", "manages+[1]", description="my direct reports")
        engine = AccessControlEngine(organization, store)
        audience = engine.authorized_audience("roadmap")
        assert audience == {manager} | {f"emp-d0-m{i}" for i in range(5)}

    def test_colleagues_of_reports(self, organization):
        manager = "emp-d1-mgr"
        store = PolicyStore()
        store.share(manager, "retro-notes")
        store.allow("retro-notes", "manages+[1]/colleague+[1]")
        engine = AccessControlEngine(organization, store)
        audience = engine.authorized_audience("retro-notes")
        # Colleagues of department-1 members are the other members and the manager.
        assert {f"emp-d1-m{i}" for i in range(5)} <= audience
        assert manager in audience
        assert not any(user.startswith("emp-d0-m") for user in audience)


class TestScenarioCatalogueOnWorkloads:
    def test_all_scenarios_enforceable_on_synthetic_graph(self):
        graph = preferential_attachment_graph(80, edges_per_node=3, seed=17)
        owner = sorted(graph.users())[0]
        store = PolicyStore()
        engine = AccessControlEngine(graph, store)
        for index, scenario in enumerate(SCENARIOS.values()):
            resource = f"res-{index}"
            store.share(owner, resource)
            store.allow(resource, list(scenario.expressions))
            audience = engine.authorized_audience(resource)
            assert owner in audience  # owner always included


class TestWorkloadReplay:
    @pytest.mark.parametrize("backend", available_backends())
    def test_replaying_a_workload_gives_identical_audit_trails(self, backend):
        workload = build_workload(WorkloadSpec(users=60, owners=4, requests=50, seed=23))
        reference_log = self._replay(workload, "bfs")
        candidate_log = self._replay(workload, backend)
        assert [entry.effect for entry in reference_log] == [
            entry.effect for entry in candidate_log
        ]

    @staticmethod
    def _replay(workload, backend):
        store = PolicyStore()
        for resource_id, owner, expressions in workload.resources:
            store.share(owner, resource_id)
            store.allow(resource_id, list(expressions))
        log = AuditLog()
        engine = AccessControlEngine(workload.graph, store, backend=backend, audit_log=log)
        for requester, resource_id in workload.requests:
            engine.is_allowed(requester, resource_id)
        return log.entries()


class TestCarminatiComparison:
    def test_reachability_model_is_strictly_more_expressive(self, figure1):
        """PERF-5's qualitative claim: the Q1 audience cannot be expressed as a
        single-relationship depth rule without over- or under-sharing."""
        store = PolicyStore()
        store.share("Alice", "res")
        store.allow("res", "friend+[1,2]/colleague+[1]")
        ours = AccessControlEngine(figure1, store).authorized_audience("res")

        baseline = CarminatiEngine(figure1)
        candidates = []
        for relationship in figure1.labels():
            for depth in (1, 2, 3):
                engine = CarminatiEngine(figure1)
                engine.add_rule(CarminatiRule(f"{relationship}-{depth}", "Alice", relationship, max_depth=depth))
                candidates.append(engine.authorized_audience(f"{relationship}-{depth}"))
        assert ours not in candidates

    def test_simple_rules_agree_between_models(self, figure1):
        """Where the baseline *can* express the policy (direct friends), both agree."""
        store = PolicyStore()
        store.share("Alice", "res")
        store.allow("res", "friend+[1]")
        ours = AccessControlEngine(figure1, store).authorized_audience("res")

        baseline = CarminatiEngine(figure1)
        baseline.add_rule(CarminatiRule("res", "Alice", "friend", max_depth=1))
        assert baseline.authorized_audience("res") == ours


class TestSerializationRoundTripThroughTheStack:
    def test_decisions_identical_after_json_round_trip(self, figure1):
        store = PolicyStore()
        store.share("Alice", "res")
        store.allow("res", "friend+[1,2]/colleague+[1]")
        original_engine = AccessControlEngine(figure1, store)
        restored_graph = from_json(to_json(figure1))
        restored_engine = AccessControlEngine(restored_graph, store)
        for user in figure1.users():
            assert original_engine.is_allowed(user, "res") == restored_engine.is_allowed(user, "res")
