"""Smoke tests: every example script runs to completion and prints sensible output."""

from __future__ import annotations

import runpy
import sys
from pathlib import Path

import pytest

EXAMPLES_DIR = Path(__file__).resolve().parents[2] / "examples"


def _run_example(name, capsys, argv=None):
    path = EXAMPLES_DIR / name
    assert path.exists(), f"example {name} is missing"
    old_argv = sys.argv
    sys.argv = [str(path)] + list(argv or [])
    try:
        runpy.run_path(str(path), run_name="__main__")
    finally:
        sys.argv = old_argv
    return capsys.readouterr().out


def test_examples_directory_has_at_least_three_examples():
    scripts = sorted(path.name for path in EXAMPLES_DIR.glob("*.py"))
    assert len(scripts) >= 3
    assert "quickstart.py" in scripts


def test_quickstart(capsys):
    output = _run_example("quickstart.py", capsys)
    assert "GRANTED" in output and "DENIED" in output
    assert "authorized audience" in output
    assert "dan" not in output.split("authorized audience:")[1]  # the minor is excluded


def test_paper_walkthrough(capsys):
    output = _run_example("paper_walkthrough.py", capsys)
    assert "Figure 1" in output and "Figure 5" in output and "Figure 7" in output.replace("Figures 6 and 7", "Figure 7")
    assert "line query: friend+/colleague+" in output
    assert "GRANTED" in output  # George's request
    assert "['Colin', 'Elena']" in output  # David's incoming friends


def test_photo_sharing(capsys):
    output = _run_example("photo_sharing.py", capsys)
    assert "synthetic network" in output
    assert "hub owner" in output
    assert "audit log" in output


def test_enterprise_collaboration(capsys):
    output = _run_example("enterprise_collaboration.py", capsys)
    assert "policy analysis: 0 errors" in output
    assert "salary-review" in output
    assert output.count("audience size = ") == 4  # one line per backend


def test_scalability_study_with_small_sizes(capsys):
    output = _run_example("scalability_study.py", capsys, argv=["30", "60"])
    assert "backend comparison" in output
    assert "cluster-index" in output and "bfs" in output
