"""End-to-end reproduction of every worked example in the paper, on every backend."""

from __future__ import annotations

import pytest

from repro.datasets.paper_graph import (
    ALICE,
    BILL,
    COLIN,
    DAVID,
    DAVID_EXTENDED_AUDIENCE,
    DAVID_EXTENDED_AUDIENCE_EXPRESSION,
    DAVID_INCOMING_FRIENDS,
    DAVID_INCOMING_FRIENDS_EXPRESSION,
    ELENA,
    FRED,
    FRIEND_PATH_EXPRESSION,
    GEORGE,
    Q1_EXPECTED_AUDIENCE,
    Q1_EXPRESSION,
    WORKED_EXAMPLE_EXPECTED_AUDIENCE,
    WORKED_EXAMPLE_EXPRESSION,
    WORKED_EXAMPLE_WITNESS_NODES,
    paper_graph,
)
from repro.policy import AccessControlEngine, PathExpression, PolicyStore
from repro.reachability import available_backends, create_evaluator

BACKENDS = available_backends()


@pytest.fixture(scope="module")
def graph():
    return paper_graph()


@pytest.fixture(scope="module", params=BACKENDS)
def evaluator(request, graph):
    return create_evaluator(request.param, graph)


class TestFigure2QueryQ1:
    """Q1: Alice/friend+[1,2]/colleague+[1] — 'colleagues of Alice's friends within 2 hops'."""

    def test_q1_audience_is_exactly_fred(self, evaluator):
        expression = PathExpression.parse(Q1_EXPRESSION)
        assert evaluator.find_targets(ALICE, expression) == Q1_EXPECTED_AUDIENCE == {FRED}

    def test_q1_grants_fred(self, evaluator):
        expression = PathExpression.parse(Q1_EXPRESSION)
        assert evaluator.evaluate(ALICE, FRED, expression).reachable

    @pytest.mark.parametrize("denied", [BILL, COLIN, DAVID, ELENA, GEORGE])
    def test_q1_denies_everyone_else(self, evaluator, denied):
        expression = PathExpression.parse(Q1_EXPRESSION)
        assert not evaluator.evaluate(ALICE, denied, expression).reachable

    def test_q1_witness_goes_through_a_friend_then_a_colleague(self, evaluator):
        expression = PathExpression.parse(Q1_EXPRESSION)
        result = evaluator.evaluate(ALICE, FRED, expression)
        assert result.witness is not None
        labels = result.witness.labels()
        assert labels[-1] == "colleague"
        assert set(labels[:-1]) == {"friend"}
        assert result.witness.start == ALICE
        assert result.witness.end == FRED

    def test_q1_expansion_produces_two_line_queries(self):
        """Section 3.1: 'The transformation results, then, in two line queries.'"""
        from repro.reachability.query import expand_line_queries

        expression = PathExpression.parse(Q1_EXPRESSION)
        queries = expand_line_queries(expression)
        assert len(queries) == 2
        assert sorted(query.label_sequence() for query in queries) == [
            ("friend", "colleague"),
            ("friend", "friend", "colleague"),
        ]


class TestSection34WorkedExample:
    """Alice shares with the friends of her friends' parents; George is granted."""

    def test_audience_is_exactly_george(self, evaluator):
        expression = PathExpression.parse(WORKED_EXAMPLE_EXPRESSION)
        assert (
            evaluator.find_targets(ALICE, expression)
            == WORKED_EXAMPLE_EXPECTED_AUDIENCE
            == {GEORGE}
        )

    def test_witness_is_alice_colin_fred_george(self, evaluator):
        expression = PathExpression.parse(WORKED_EXAMPLE_EXPRESSION)
        result = evaluator.evaluate(ALICE, GEORGE, expression)
        assert result.reachable
        assert result.witness is not None
        assert result.witness.nodes() == WORKED_EXAMPLE_WITNESS_NODES

    @pytest.mark.parametrize("denied", [BILL, COLIN, DAVID, ELENA, FRED])
    def test_everyone_else_is_denied(self, evaluator, denied):
        expression = PathExpression.parse(WORKED_EXAMPLE_EXPRESSION)
        assert not evaluator.evaluate(ALICE, denied, expression).reachable


class TestSection2DavidExamples:
    """'David is able to share his jokes with those who consider him as a friend...'."""

    def test_incoming_friends_are_elena_and_colin(self, evaluator):
        expression = PathExpression.parse(DAVID_INCOMING_FRIENDS_EXPRESSION)
        assert evaluator.find_targets(DAVID, expression) == DAVID_INCOMING_FRIENDS

    def test_extended_audience_includes_bill_and_george(self, evaluator):
        expression = PathExpression.parse(DAVID_EXTENDED_AUDIENCE_EXPRESSION)
        audience = evaluator.find_targets(DAVID, expression)
        assert audience == DAVID_EXTENDED_AUDIENCE
        assert {BILL, GEORGE} <= audience


class TestDefinition1FriendPath:
    """'From Alice to George, there is a friend-typed path of length 3.'"""

    def test_friend_depth3_reaches_george(self, evaluator):
        expression = PathExpression.parse(FRIEND_PATH_EXPRESSION)
        result = evaluator.evaluate(ALICE, GEORGE, expression)
        assert result.reachable
        assert result.witness is not None
        assert len(result.witness) == 3
        assert set(result.witness.labels()) == {"friend"}


class TestIntroductionScenarios:
    """Access rules from the introduction, expressed and enforced over Figure 1."""

    def test_only_friends_and_children_see_birthday_photos(self, graph):
        store = PolicyStore()
        store.share(COLIN, "colin-birthday", kind="photos")
        store.allow("colin-birthday", "friend+[1]", description="my friends")
        store.allow("colin-birthday", "parent+[1]", description="my children")
        engine = AccessControlEngine(graph, store)
        # Colin's outgoing friend edge goes to David; his child is Fred.
        assert engine.is_allowed(DAVID, "colin-birthday")
        assert engine.is_allowed(FRED, "colin-birthday")
        assert engine.is_allowed(COLIN, "colin-birthday")  # owner
        for other in (ALICE, BILL, ELENA, GEORGE):
            assert not engine.is_allowed(other, "colin-birthday")

    def test_children_and_their_friends_read_the_notes(self, graph):
        store = PolicyStore()
        store.share(DAVID, "david-notes", kind="notes")
        store.allow("david-notes", ["parent+[1]/friend+[1]"], description="friends of my children")
        store.allow("david-notes", ["parent+[1]"], description="my children")
        engine = AccessControlEngine(graph, store)
        # David's child is George; George has no outgoing friend edge, so the
        # audience is exactly {George} (plus David, the owner).
        assert engine.authorized_audience("david-notes") == {DAVID, GEORGE}

    def test_multi_condition_rule_requires_all_conditions(self, graph):
        store = PolicyStore()
        store.share(ALICE, "alice-draft", kind="document")
        store.allow("alice-draft", ["friend+[1,2]", "colleague+[1,2]"])
        engine = AccessControlEngine(graph, store)
        # David is a colleague (direct) and a friend of a friend (via Colin): granted.
        assert engine.is_allowed(DAVID, "alice-draft")
        # Colin is only a friend, not reachable by colleague edges: denied.
        assert not engine.is_allowed(COLIN, "alice-draft")


class TestBackendAgreementOnPaperGraph:
    """All backends must return the same decision for every (user, expression) pair."""

    EXPRESSIONS = [
        Q1_EXPRESSION,
        WORKED_EXAMPLE_EXPRESSION,
        DAVID_INCOMING_FRIENDS_EXPRESSION,
        DAVID_EXTENDED_AUDIENCE_EXPRESSION,
        "friend+[1]",
        "friend+[1,3]",
        "colleague+[1]/friend+[1]",
        "parent+[1]/friend+[1]{age >= 18}",
        "friend*[1,2]",
        "friend*[1,2]{gender = female}",
    ]

    @pytest.mark.parametrize("expression_text", EXPRESSIONS)
    def test_same_audience_for_every_backend(self, graph, expression_text):
        expression = PathExpression.parse(expression_text)
        audiences = {}
        for backend in BACKENDS:
            evaluator = create_evaluator(backend, graph)
            for owner in (ALICE, DAVID, ELENA):
                audiences.setdefault(owner, set())
                audience = frozenset(evaluator.find_targets(owner, expression))
                audiences[owner].add(audience)
        for owner, variants in audiences.items():
            assert len(variants) == 1, f"backends disagree for owner {owner}: {variants}"
