"""Unit tests for policy validation and conflict analysis."""

from __future__ import annotations

import pytest

from repro.datasets.paper_graph import ALICE, paper_graph
from repro.policy.administration import (
    analyze_policy,
    find_redundant_rules,
    validate_rule,
)
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore


@pytest.fixture
def graph():
    return paper_graph()


class TestValidateRule:
    def test_clean_rule_has_no_issues(self, graph):
        rule = AccessRule.build("res", ALICE, "friend+[1,2]/colleague+[1]", rule_id="r")
        assert validate_rule(rule, graph) == []

    def test_unknown_label_is_an_error(self, graph):
        rule = AccessRule.build("res", ALICE, "follows+[1]", rule_id="r")
        issues = validate_rule(rule, graph)
        assert any(issue.severity == "error" and "follows" in issue.message for issue in issues)

    def test_unknown_owner_is_an_error(self, graph):
        rule = AccessRule.build("res", "Mallory", "friend+[1]", rule_id="r")
        issues = validate_rule(rule, graph)
        assert any("Mallory" in issue.message for issue in issues)

    def test_excessive_depth_is_a_warning(self, graph):
        rule = AccessRule.build("res", ALICE, "friend+[1,50]", rule_id="r")
        issues = validate_rule(rule, graph)
        assert any(issue.severity == "warning" and "depth" in issue.message for issue in issues)

    def test_unknown_attribute_is_a_warning(self, graph):
        rule = AccessRule.build("res", ALICE, "friend+[1]{salary >= 1000}", rule_id="r")
        issues = validate_rule(rule, graph)
        assert any("salary" in issue.message for issue in issues)

    def test_issue_str(self, graph):
        rule = AccessRule.build("res", ALICE, "follows+[1]", rule_id="r")
        issue = validate_rule(rule, graph)[0]
        assert "[error]" in str(issue) and "'r'" in str(issue)


class TestRedundancy:
    def test_identical_rules_on_same_resource_flagged(self):
        store = PolicyStore()
        store.share(ALICE, "res")
        first = store.allow("res", "friend+[1]")
        second = store.allow("res", "friend+[1]")
        pairs = find_redundant_rules(store)
        assert pairs == [(first.rule_id, second.rule_id)]

    def test_same_conditions_on_different_resources_not_flagged(self):
        store = PolicyStore()
        store.share(ALICE, "a")
        store.share(ALICE, "b")
        store.allow("a", "friend+[1]")
        store.allow("b", "friend+[1]")
        assert find_redundant_rules(store) == []

    def test_condition_order_does_not_matter(self):
        store = PolicyStore()
        store.share(ALICE, "res")
        store.allow("res", ["friend+[1]", "colleague+[1]"])
        store.allow("res", ["colleague+[1]", "friend+[1]"])
        assert len(find_redundant_rules(store)) == 1


class TestAnalyzePolicy:
    def test_clean_store(self, graph):
        store = PolicyStore()
        store.share(ALICE, "res")
        store.allow("res", "friend+[1]")
        report = analyze_policy(store, graph)
        assert report.is_clean()

    def test_report_aggregates_everything(self, graph):
        store = PolicyStore()
        store.share(ALICE, "protected")
        store.share(ALICE, "forgotten")
        store.allow("protected", "follows+[1]")
        store.allow("protected", "follows+[1]")
        report = analyze_policy(store, graph)
        assert not report.is_clean()
        assert report.errors()
        assert report.redundant_rules
        assert report.unprotected_resources == ["forgotten"]

    def test_errors_and_warnings_split(self, graph):
        store = PolicyStore()
        store.share(ALICE, "res")
        store.allow("res", "follows+[1]{salary > 10}")
        report = analyze_policy(store, graph)
        assert len(report.errors()) == 1
        assert len(report.warnings()) == 1
