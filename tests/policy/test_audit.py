"""Unit tests for the audit log."""

from __future__ import annotations

import json

import pytest

from repro.policy.audit import AuditLog
from repro.policy.decisions import AccessDecision, Effect


def _decision(requester="Bob", resource="res", granted=True, elapsed=0.01):
    return AccessDecision(
        effect=Effect.GRANT if granted else Effect.DENY,
        resource_id=resource,
        owner="Alice",
        requester=requester,
        reason="test",
        elapsed_seconds=elapsed,
    )


class TestRecording:
    def test_record_and_len(self):
        log = AuditLog()
        log.record(_decision())
        log.record(_decision(granted=False))
        assert len(log) == 2
        assert len(log.entries()) == 2

    def test_capacity_drops_oldest(self):
        log = AuditLog(capacity=2)
        log.record(_decision(requester="first"))
        log.record(_decision(requester="second"))
        log.record(_decision(requester="third"))
        assert len(log) == 2
        assert [entry.requester for entry in log] == ["second", "third"]

    def test_clear(self):
        log = AuditLog()
        log.record(_decision())
        log.clear()
        assert len(log) == 0


class TestQuerying:
    @pytest.fixture
    def log(self):
        log = AuditLog()
        log.record(_decision(requester="Bob", resource="r1", granted=True))
        log.record(_decision(requester="Bob", resource="r2", granted=False))
        log.record(_decision(requester="Carol", resource="r1", granted=True))
        return log

    def test_for_requester(self, log):
        assert len(log.for_requester("Bob")) == 2
        assert len(log.for_requester("Nobody")) == 0

    def test_for_resource(self, log):
        assert len(log.for_resource("r1")) == 2

    def test_grants_and_denials(self, log):
        assert len(log.grants()) == 2
        assert len(log.denials()) == 1

    def test_grant_rate(self, log):
        assert log.grant_rate() == pytest.approx(2 / 3)
        assert AuditLog().grant_rate() == 0.0

    def test_requests_per_resource_and_requester(self, log):
        assert log.requests_per_resource() == {"r1": 2, "r2": 1}
        assert log.requests_per_requester() == {"Bob": 2, "Carol": 1}

    def test_average_latency(self, log):
        assert log.average_latency() == pytest.approx(0.01)
        assert AuditLog().average_latency() == 0.0


class TestSerialization:
    def test_to_json_is_valid_and_complete(self):
        log = AuditLog()
        log.record(_decision(granted=True))
        payload = json.loads(log.to_json())
        assert len(payload) == 1
        entry = payload[0]
        assert entry["effect"] == "grant"
        assert entry["requester"] == "Bob"
        assert entry["resource_id"] == "res"
        assert "witnesses" in entry

    def test_repr_mentions_grant_rate(self):
        log = AuditLog()
        log.record(_decision())
        assert "grant rate" in repr(log)
