"""Unit tests for the Carminati et al. baseline model."""

from __future__ import annotations

import pytest

from repro.exceptions import ResourceNotFoundError, RuleValidationError
from repro.graph.builder import GraphBuilder
from repro.policy.carminati import CarminatiEngine, CarminatiRule


@pytest.fixture
def graph():
    """a -> b -> c -> d friendship chain with decreasing trust, plus a colleague edge."""
    builder = GraphBuilder()
    builder.relate("a", "b", "friend", trust=0.9)
    builder.relate("b", "c", "friend", trust=0.8)
    builder.relate("c", "d", "friend", trust=0.5)
    builder.relate("a", "x", "colleague", trust=1.0)
    return builder.build()


class TestRuleValidation:
    def test_depth_must_be_positive(self):
        with pytest.raises(RuleValidationError):
            CarminatiRule("res", "a", "friend", max_depth=0)

    def test_trust_must_be_in_unit_interval(self):
        with pytest.raises(RuleValidationError):
            CarminatiRule("res", "a", "friend", min_trust=1.5)

    def test_describe(self):
        rule = CarminatiRule("res", "a", "friend", max_depth=2, min_trust=0.5)
        text = rule.describe()
        assert "friend" in text and "2" in text and "0.5" in text


class TestEngine:
    def test_depth_limit(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend", max_depth=2))
        assert engine.is_allowed("b", "res")
        assert engine.is_allowed("c", "res")
        assert not engine.is_allowed("d", "res")

    def test_trust_threshold_uses_path_product(self, graph):
        engine = CarminatiEngine(graph)
        # a->b->c has aggregated trust 0.72; a->b->c->d only 0.36.
        engine.add_rule(CarminatiRule("res", "a", "friend", max_depth=3, min_trust=0.7))
        assert engine.is_allowed("c", "res")
        assert not engine.is_allowed("d", "res")

    def test_relationship_type_is_enforced(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend", max_depth=3))
        assert not engine.is_allowed("x", "res")

    def test_owner_always_allowed(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend"))
        assert engine.is_allowed("a", "res")

    def test_multiple_rules_any_grants(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend", max_depth=1))
        engine.add_rule(CarminatiRule("res", "a", "colleague", max_depth=1))
        assert engine.is_allowed("b", "res")
        assert engine.is_allowed("x", "res")
        assert not engine.is_allowed("c", "res")

    def test_unknown_resource_raises(self, graph):
        engine = CarminatiEngine(graph)
        with pytest.raises(ResourceNotFoundError):
            engine.check_access("b", "nothing")
        with pytest.raises(ResourceNotFoundError):
            engine.authorized_audience("nothing")

    def test_conflicting_owner_rejected(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend"))
        with pytest.raises(RuleValidationError):
            engine.add_rule(CarminatiRule("res", "b", "friend"))

    def test_authorized_audience(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend", max_depth=2, min_trust=0.7))
        assert engine.authorized_audience("res") == {"a", "b", "c"}

    def test_decision_metadata(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "a", "friend"))
        decision = engine.check_access("b", "res")
        assert decision.granted
        assert decision.owner == "a" and decision.requester == "b"
        denied = engine.check_access("d", "res")
        assert not denied.granted and "no depth/trust rule" in denied.reason

    def test_edges_without_trust_count_as_full_trust(self):
        builder = GraphBuilder()
        builder.relate("a", "b", "friend")  # no trust attribute
        engine = CarminatiEngine(builder.build())
        engine.add_rule(CarminatiRule("res", "a", "friend", min_trust=0.99))
        assert engine.is_allowed("b", "res")

    def test_owner_missing_from_graph_denies_everyone_else(self, graph):
        engine = CarminatiEngine(graph)
        engine.add_rule(CarminatiRule("res", "ghost", "friend"))
        assert not engine.is_allowed("a", "res")
        assert engine.is_allowed("ghost", "res")  # the owner themselves
