"""Unit tests for attribute conditions."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownOperatorError
from repro.policy.conditions import AttributeCondition, evaluate_conditions


class TestEvaluation:
    @pytest.mark.parametrize(
        "operator, value, attrs, expected",
        [
            ("=", 24, {"age": 24}, True),
            ("=", 24, {"age": 25}, False),
            ("==", "female", {"gender": "female"}, True),
            ("!=", "female", {"gender": "male"}, True),
            ("!=", "female", {"gender": "female"}, False),
            ("<", 18, {"age": 12}, True),
            ("<", 18, {"age": 18}, False),
            ("<=", 18, {"age": 18}, True),
            (">", 18, {"age": 19}, True),
            (">=", 18, {"age": 18}, True),
            (">=", 18, {"age": 17}, False),
        ],
    )
    def test_comparisons(self, operator, value, attrs, expected):
        condition = AttributeCondition("age" if "age" in attrs else "gender", operator, value)
        assert condition.evaluate(attrs) is expected

    def test_missing_attribute_never_satisfies(self):
        assert not AttributeCondition("age", ">=", 18).evaluate({})
        assert not AttributeCondition("age", "=", None).evaluate({})

    def test_numeric_coercion_of_strings(self):
        condition = AttributeCondition("age", ">=", 18)
        assert condition.evaluate({"age": "21"})
        assert not condition.evaluate({"age": "12"})

    def test_incomparable_types_do_not_crash(self):
        condition = AttributeCondition("age", ">", 18)
        assert condition.evaluate({"age": "abc"}) is False

    def test_in_operator(self):
        condition = AttributeCondition("city", "in", ("paris", "rome"))
        assert condition.evaluate({"city": "paris"})
        assert not condition.evaluate({"city": "berlin"})

    def test_in_operator_with_non_collection_value(self):
        assert not AttributeCondition("city", "in", 42).evaluate({"city": "paris"})

    def test_contains_operator_is_case_insensitive(self):
        condition = AttributeCondition("job", "~", "ENGINEER")
        assert condition.evaluate({"job": "Software Engineer"})
        assert not condition.evaluate({"job": "teacher"})

    def test_unknown_operator_rejected(self):
        with pytest.raises(UnknownOperatorError):
            AttributeCondition("age", "<>", 18)

    def test_evaluate_conditions_all_must_hold(self):
        conditions = [
            AttributeCondition("age", ">=", 18),
            AttributeCondition("gender", "=", "female"),
        ]
        assert evaluate_conditions(conditions, {"age": 30, "gender": "female"})
        assert not evaluate_conditions(conditions, {"age": 30, "gender": "male"})
        assert evaluate_conditions([], {"anything": 1})


class TestParsing:
    @pytest.mark.parametrize(
        "text, attribute, operator, value",
        [
            ("age >= 18", "age", ">=", 18),
            ("age>=18", "age", ">=", 18),
            ("gender = female", "gender", "=", "female"),
            ("gender == female", "gender", "==", "female"),
            ("score < 3.5", "score", "<", 3.5),
            ("name != 'bob'", "name", "!=", "bob"),
            ('city = "new york"', "city", "=", "new york"),
            ("active = true", "active", "=", True),
            ("active != false", "active", "!=", False),
            ("job ~ engineer", "job", "~", "engineer"),
        ],
    )
    def test_parse_simple(self, text, attribute, operator, value):
        condition = AttributeCondition.parse(text)
        assert condition.attribute == attribute
        assert condition.operator == operator
        assert condition.value == value

    def test_parse_list_literal(self):
        condition = AttributeCondition.parse("city in [paris, rome, 3]")
        assert condition.operator == "in"
        assert condition.value == ("paris", "rome", 3)

    def test_parse_empty_list(self):
        assert AttributeCondition.parse("city in []").value == ()

    def test_parse_garbage_raises(self):
        with pytest.raises(UnknownOperatorError):
            AttributeCondition.parse("completely broken")

    def test_round_trip_through_text(self):
        for text in ["age >= 18", "gender = female", "city in [paris, rome]"]:
            condition = AttributeCondition.parse(text)
            again = AttributeCondition.parse(condition.to_text())
            assert again == condition

    def test_to_text_normalizes_double_equals(self):
        assert AttributeCondition("a", "==", 1).to_text() == "a = 1"

    def test_str_is_text_form(self):
        assert str(AttributeCondition("age", ">=", 18)) == "age >= 18"
