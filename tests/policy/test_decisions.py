"""Unit tests for access decisions and their explanations."""

from __future__ import annotations

from repro.graph.paths import Path, Traversal
from repro.graph.social_graph import Relationship
from repro.policy.decisions import AccessDecision, ConditionOutcome, Effect, RuleOutcome
from repro.policy.rules import AccessCondition, AccessRule


def _witness():
    rel = Relationship("Alice", "Bob", "friend")
    return Path("Alice", (Traversal(rel),))


def _rule_outcome(satisfied: bool, with_witness: bool = True):
    condition = AccessCondition.parse("Alice", "friend+[1]")
    rule = AccessRule(resource_id="res", conditions=(condition,), rule_id="r1")
    outcome = ConditionOutcome(
        condition=condition,
        satisfied=satisfied,
        witness=_witness() if (satisfied and with_witness) else None,
    )
    return RuleOutcome(rule=rule, satisfied=satisfied, condition_outcomes=(outcome,))


class TestEffect:
    def test_truthiness(self):
        assert bool(Effect.GRANT)
        assert not bool(Effect.DENY)


class TestConditionOutcome:
    def test_describe_satisfied_with_witness(self):
        outcome = ConditionOutcome(AccessCondition.parse("Alice", "friend"), True, _witness())
        text = outcome.describe()
        assert "satisfied" in text
        assert "Alice -> Bob" in text

    def test_describe_unsatisfied(self):
        outcome = ConditionOutcome(AccessCondition.parse("Alice", "friend"), False)
        assert "not satisfied" in outcome.describe()


class TestRuleOutcome:
    def test_describe(self):
        text = _rule_outcome(True).describe()
        assert "SATISFIED" in text and "r1" in text

    def test_describe_unsatisfied(self):
        assert "not satisfied" in _rule_outcome(False).describe()


class TestAccessDecision:
    def _decision(self, granted: bool):
        return AccessDecision(
            effect=Effect.GRANT if granted else Effect.DENY,
            resource_id="res",
            owner="Alice",
            requester="Bob",
            rule_outcomes=(_rule_outcome(granted),),
            reason="because",
        )

    def test_granted_and_bool(self):
        assert self._decision(True).granted
        assert bool(self._decision(True))
        assert not self._decision(False).granted

    def test_matched_rule(self):
        assert self._decision(True).matched_rule().rule_id == "r1"
        assert self._decision(False).matched_rule() is None

    def test_witnesses_collected(self):
        witnesses = self._decision(True).witnesses()
        assert len(witnesses) == 1
        assert witnesses[0].nodes() == ["Alice", "Bob"]
        assert self._decision(False).witnesses() == []

    def test_explain_mentions_everything(self):
        text = self._decision(True).explain()
        assert "GRANTED" in text
        assert "'res'" in text and "'Bob'" in text and "because" in text
        assert str(self._decision(True)) == text

    def test_explain_denied(self):
        assert "DENIED" in self._decision(False).explain()

    def test_timestamp_populated(self):
        assert self._decision(True).timestamp > 0
