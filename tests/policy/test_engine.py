"""Unit tests for the AccessControlEngine over the Figure-1 graph."""

from __future__ import annotations

import pytest

from repro.datasets.paper_graph import ALICE, BILL, COLIN, DAVID, ELENA, FRED, GEORGE
from repro.exceptions import ResourceNotFoundError
from repro.policy.audit import AuditLog
from repro.policy.decisions import Effect
from repro.policy.engine import AccessControlEngine
from repro.policy.store import PolicyStore
from repro.reachability import available_backends


@pytest.fixture
def store():
    store = PolicyStore()
    store.share(ALICE, "photos", kind="album")
    store.share(ALICE, "unprotected", kind="note")
    store.share(DAVID, "jokes", kind="note")
    store.allow("photos", "friend+[1,2]/colleague+[1]", description="Q1")
    store.allow("jokes", "friend-[1]", description="whoever calls me a friend")
    return store


@pytest.fixture
def engine(figure1, store):
    return AccessControlEngine(figure1, store)


class TestBasicDecisions:
    def test_granted_request(self, engine):
        decision = engine.check_access(FRED, "photos")
        assert decision.granted and decision.effect is Effect.GRANT
        assert decision.owner == ALICE and decision.requester == FRED

    def test_denied_request(self, engine):
        decision = engine.check_access(GEORGE, "photos")
        assert not decision.granted

    def test_owner_always_allowed(self, engine):
        decision = engine.check_access(ALICE, "photos")
        assert decision.granted
        assert "owner" in decision.reason

    def test_unprotected_resource_denied_by_default(self, engine):
        assert not engine.check_access(BILL, "unprotected").granted

    def test_default_effect_can_be_grant(self, figure1, store):
        permissive = AccessControlEngine(figure1, store, default_effect=Effect.GRANT)
        assert permissive.check_access(BILL, "unprotected").granted

    def test_unknown_resource_raises(self, engine):
        with pytest.raises(ResourceNotFoundError):
            engine.check_access(BILL, "does-not-exist")

    def test_incoming_direction_rule(self, engine):
        assert engine.is_allowed(ELENA, "jokes")
        assert engine.is_allowed(COLIN, "jokes")
        assert not engine.is_allowed(BILL, "jokes")

    def test_is_allowed_matches_check_access(self, engine):
        for requester in (ALICE, BILL, COLIN, DAVID, ELENA, FRED, GEORGE):
            assert engine.is_allowed(requester, "photos") == engine.check_access(
                requester, "photos"
            ).granted


class TestExplanations:
    def test_granted_explanation_has_witness(self, engine):
        decision = engine.check_access(FRED, "photos", explain=True)
        witnesses = decision.witnesses()
        assert witnesses and witnesses[0].start == ALICE and witnesses[0].end == FRED

    def test_explain_text(self, engine):
        text = engine.explain(FRED, "photos")
        assert "GRANTED" in text and "Q1" not in text  # description lives on the rule, not the text header
        assert "Alice/friend+[1,2]/colleague+[1]" in text

    def test_denied_explanation_lists_unsatisfied_rules(self, engine):
        decision = engine.check_access(GEORGE, "photos", explain=True)
        assert decision.rule_outcomes
        assert all(not outcome.satisfied for outcome in decision.rule_outcomes)


class TestAudienceComputation:
    def test_filter_audience(self, engine, figure1):
        audience = engine.filter_audience("photos", figure1.users())
        assert audience == {ALICE, FRED}

    def test_authorized_audience(self, engine):
        assert engine.authorized_audience("photos") == {ALICE, FRED}
        assert engine.authorized_audience("jokes") == {DAVID, ELENA, COLIN}

    def test_authorized_audience_of_unprotected_resource_is_owner_only(self, engine):
        assert engine.authorized_audience("unprotected") == {ALICE}

    def test_multi_condition_rule_audience_is_intersection(self, figure1):
        store = PolicyStore()
        store.share(ALICE, "draft")
        store.allow("draft", ["friend+[1,2]", "colleague+[1,2]"])
        engine = AccessControlEngine(figure1, store)
        assert engine.authorized_audience("draft") == {ALICE, DAVID}

    def test_any_combination_rule_audience_is_union(self, figure1):
        store = PolicyStore()
        store.share(ALICE, "draft")
        store.allow("draft", ["friend+[1]", "colleague+[1]"], combination="any")
        engine = AccessControlEngine(figure1, store)
        assert engine.authorized_audience("draft") == {ALICE, COLIN, BILL, DAVID}


class TestBackends:
    @pytest.mark.parametrize("backend", available_backends())
    def test_every_backend_produces_identical_decisions(self, figure1, store, backend):
        reference = AccessControlEngine(figure1, store, backend="bfs")
        candidate = AccessControlEngine(figure1, store, backend=backend)
        for requester in (ALICE, BILL, COLIN, DAVID, ELENA, FRED, GEORGE):
            for resource in ("photos", "jokes", "unprotected"):
                assert candidate.is_allowed(requester, resource) == reference.is_allowed(
                    requester, resource
                ), (backend, requester, resource)

    def test_statistics_include_policy_counts(self, engine):
        stats = engine.statistics()
        assert stats["resources"] == 3.0
        assert stats["rules"] == 2.0

    def test_repeated_checks_ride_the_decision_memo(self, figure1, engine):
        for _ in range(3):
            assert engine.check_access(FRED, "photos").granted
        info = engine.reachability.cache_info()
        assert info["hits"] >= 2

    def test_decision_memo_invalidated_by_graph_mutation(self, figure1, engine):
        assert not engine.is_allowed(GEORGE, "jokes")
        figure1.add_relationship(GEORGE, DAVID, "friend")
        assert engine.is_allowed(GEORGE, "jokes")
        figure1.remove_relationship(GEORGE, DAVID, "friend")
        assert not engine.is_allowed(GEORGE, "jokes")


class TestAuditIntegration:
    def test_decisions_are_recorded(self, figure1, store):
        log = AuditLog()
        engine = AccessControlEngine(figure1, store, audit_log=log)
        engine.is_allowed(FRED, "photos")
        engine.is_allowed(GEORGE, "photos")
        assert len(log) == 2
        assert len(log.grants()) == 1
        assert len(log.denials()) == 1
