"""Unit tests for the path-expression parser and renderer."""

from __future__ import annotations

import pytest

from repro.exceptions import PathExpressionSyntaxError
from repro.policy.path_expression import PathExpression, parse_path_expression
from repro.policy.steps import DepthInterval, Direction, Step


class TestParsingBasics:
    def test_single_label_defaults(self):
        expression = PathExpression.parse("friend")
        assert len(expression) == 1
        step = expression[0]
        assert step.label == "friend"
        assert step.direction is Direction.OUTGOING
        assert step.depths == DepthInterval(1, 1)
        assert step.conditions == ()

    def test_paper_query_q1(self):
        expression = PathExpression.parse("friend+[1,2]/colleague+[1]")
        assert expression.labels() == ("friend", "colleague")
        assert expression[0].depths == DepthInterval(1, 2)
        assert expression[1].depths == DepthInterval(1, 1)

    def test_directions(self):
        expression = PathExpression.parse("friend-/parent*/colleague+")
        assert [step.direction for step in expression] == [
            Direction.INCOMING,
            Direction.ANY,
            Direction.OUTGOING,
        ]

    def test_single_depth_interval(self):
        assert PathExpression.parse("friend[3]")[0].depths == DepthInterval(3, 3)

    def test_whitespace_tolerated(self):
        expression = PathExpression.parse("  friend + [1, 2]  /  colleague [1] ")
        assert expression.labels() == ("friend", "colleague")
        assert expression[0].depths == DepthInterval(1, 2)

    def test_attribute_conditions(self):
        expression = PathExpression.parse("friend+[1,2]{age >= 18, gender = female}")
        conditions = expression[0].conditions
        assert len(conditions) == 2
        assert conditions[0].attribute == "age" and conditions[0].value == 18
        assert conditions[1].attribute == "gender" and conditions[1].value == "female"

    def test_condition_with_list_value(self):
        expression = PathExpression.parse("friend{city in [paris, rome]}")
        assert expression[0].conditions[0].value == ("paris", "rome")

    def test_underscore_labels(self):
        assert PathExpression.parse("best_friend")[0].label == "best_friend"

    def test_module_level_helper(self):
        assert parse_path_expression("friend") == PathExpression.parse("friend")


class TestParsingErrors:
    @pytest.mark.parametrize(
        "text",
        [
            "",
            "   ",
            "/friend",
            "friend//colleague",
            "friend/",
            "friend[",
            "friend[1",
            "friend[a]",
            "friend[2,1]",
            "friend[0]",
            "friend{age >>> 3}",
            "friend{broken",
            "123friend",
            "friend colleague",
        ],
    )
    def test_malformed_expressions_raise(self, text):
        with pytest.raises(PathExpressionSyntaxError):
            PathExpression.parse(text)

    def test_error_carries_position_and_expression(self):
        with pytest.raises(PathExpressionSyntaxError) as excinfo:
            PathExpression.parse("friend[1")
        error = excinfo.value
        assert error.expression == "friend[1"
        assert isinstance(error.position, int)
        assert "friend[1" in str(error)


class TestRendering:
    @pytest.mark.parametrize(
        "text",
        [
            "friend+[1]",
            "friend+[1,2]/colleague+[1]",
            "friend-[2]/parent*[1,3]",
            "friend+[1,2]{age >= 18}/colleague+[1]{city = paris}",
        ],
    )
    def test_round_trip(self, text):
        expression = PathExpression.parse(text)
        assert PathExpression.parse(expression.to_text()) == expression

    def test_to_text_of_defaults_is_canonical(self):
        assert PathExpression.parse("friend").to_text() == "friend+[1]"

    def test_str(self):
        assert str(PathExpression.parse("friend/parent")) == "friend+[1]/parent+[1]"


class TestProperties:
    def test_lengths(self):
        expression = PathExpression.parse("friend+[1,2]/colleague+[2,3]")
        assert expression.min_length() == 3
        assert expression.max_length() == 5

    def test_expansion_count(self):
        expression = PathExpression.parse("friend+[1,2]/colleague+[1,3]")
        assert expression.expansion_count() == 6

    def test_has_attribute_conditions(self):
        assert not PathExpression.parse("friend").has_attribute_conditions()
        assert PathExpression.parse("friend{age>=18}").has_attribute_conditions()

    def test_of_constructor_and_indexing(self):
        steps = (Step("friend"), Step("colleague", direction=Direction.ANY))
        expression = PathExpression.of(*steps)
        assert expression[1].direction is Direction.ANY
        assert list(expression) == list(steps)

    def test_labels(self):
        assert PathExpression.parse("a/b/a").labels() == ("a", "b", "a")
