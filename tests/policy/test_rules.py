"""Unit tests for AccessCondition and AccessRule (Definitions 2 and 3)."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleValidationError
from repro.policy.path_expression import PathExpression
from repro.policy.rules import AccessCondition, AccessRule, CombinationMode


class TestAccessCondition:
    def test_parse(self):
        condition = AccessCondition.parse("Alice", "friend+[1,2]/colleague+[1]")
        assert condition.owner == "Alice"
        assert condition.path.labels() == ("friend", "colleague")

    def test_describe_uses_paper_notation(self):
        condition = AccessCondition.parse("Alice", "friend+[1,2]")
        assert condition.describe() == "Alice/friend+[1,2]"
        assert str(condition) == condition.describe()

    def test_equality(self):
        first = AccessCondition.parse("Alice", "friend")
        second = AccessCondition("Alice", PathExpression.parse("friend"))
        assert first == second


class TestCombinationMode:
    def test_coerce_from_string(self):
        assert CombinationMode.coerce("all") is CombinationMode.ALL
        assert CombinationMode.coerce("any") is CombinationMode.ANY
        assert CombinationMode.coerce(CombinationMode.ALL) is CombinationMode.ALL

    def test_coerce_rejects_unknown(self):
        with pytest.raises(RuleValidationError):
            CombinationMode.coerce("sometimes")


class TestAccessRule:
    def test_build_from_single_expression(self):
        rule = AccessRule.build("res", "Alice", "friend+[1,2]")
        assert rule.owner == "Alice"
        assert rule.resource_id == "res"
        assert rule.condition_count() == 1
        assert rule.combination is CombinationMode.ALL

    def test_build_from_multiple_expressions(self):
        rule = AccessRule.build("res", "Alice", ["friend+[1]", "colleague+[1]"], combination="any")
        assert rule.condition_count() == 2
        assert rule.combination is CombinationMode.ANY

    def test_empty_condition_set_rejected(self):
        with pytest.raises(RuleValidationError):
            AccessRule(resource_id="res", conditions=())

    def test_mixed_owners_rejected(self):
        conditions = (
            AccessCondition.parse("Alice", "friend"),
            AccessCondition.parse("Bob", "friend"),
        )
        with pytest.raises(RuleValidationError):
            AccessRule(resource_id="res", conditions=conditions)

    def test_string_combination_is_coerced(self):
        rule = AccessRule(
            resource_id="res",
            conditions=(AccessCondition.parse("Alice", "friend"),),
            combination="any",
        )
        assert rule.combination is CombinationMode.ANY

    def test_describe_lists_conditions(self):
        rule = AccessRule.build(
            "res", "Alice", ["friend+[1]", "colleague+[1]"], rule_id="r1", description="demo"
        )
        text = rule.describe()
        assert "r1" in text and "demo" in text
        assert "Alice/friend+[1]" in text and "Alice/colleague+[1]" in text
        assert "all of" in text

    def test_describe_any_mode(self):
        rule = AccessRule.build("res", "Alice", ["friend"], combination="any")
        assert "any of" in rule.describe()

    def test_rules_are_immutable_value_objects(self):
        rule = AccessRule.build("res", "Alice", "friend", rule_id="r1")
        same = AccessRule.build("res", "Alice", "friend", rule_id="r1")
        assert rule == same
        with pytest.raises(AttributeError):
            rule.resource_id = "other"  # type: ignore[misc]
