"""Unit tests for Direction, DepthInterval and Step."""

from __future__ import annotations

import pytest

from repro.exceptions import RuleValidationError
from repro.policy.conditions import AttributeCondition
from repro.policy.steps import DepthInterval, Direction, Step


class TestDirection:
    def test_symbols(self):
        assert Direction.from_symbol("+") is Direction.OUTGOING
        assert Direction.from_symbol("-") is Direction.INCOMING
        assert Direction.from_symbol("*") is Direction.ANY

    def test_unknown_symbol_raises(self):
        with pytest.raises(RuleValidationError):
            Direction.from_symbol("?")

    def test_traversal_permissions(self):
        assert Direction.OUTGOING.allows_forward() and not Direction.OUTGOING.allows_backward()
        assert Direction.INCOMING.allows_backward() and not Direction.INCOMING.allows_forward()
        assert Direction.ANY.allows_forward() and Direction.ANY.allows_backward()

    def test_str(self):
        assert str(Direction.OUTGOING) == "+"
        assert str(Direction.ANY) == "*"


class TestDepthInterval:
    def test_defaults_to_direct_relationship(self):
        interval = DepthInterval()
        assert interval.minimum == 1 and interval.maximum == 1
        assert interval.width() == 1

    def test_membership(self):
        interval = DepthInterval(2, 4)
        assert 2 in interval and 3 in interval and 4 in interval
        assert 1 not in interval and 5 not in interval
        assert "3" not in interval  # non-int values never belong

    def test_iteration(self):
        assert list(DepthInterval(1, 3)) == [1, 2, 3]

    def test_invalid_minimum(self):
        with pytest.raises(RuleValidationError):
            DepthInterval(0, 2)

    def test_maximum_below_minimum(self):
        with pytest.raises(RuleValidationError):
            DepthInterval(3, 2)

    def test_text_form(self):
        assert DepthInterval(1, 1).to_text() == "[1]"
        assert DepthInterval(1, 3).to_text() == "[1,3]"

    def test_ordering(self):
        assert DepthInterval(1, 2) < DepthInterval(2, 2)


class TestStep:
    def test_defaults(self):
        step = Step("friend")
        assert step.direction is Direction.OUTGOING
        assert step.min_depth() == 1 and step.max_depth() == 1
        assert step.conditions == ()

    def test_empty_label_rejected(self):
        with pytest.raises(RuleValidationError):
            Step("")

    def test_satisfied_by(self):
        step = Step("friend", conditions=(AttributeCondition("age", ">=", 18),))
        assert step.satisfied_by({"age": 20})
        assert not step.satisfied_by({"age": 10})
        assert not step.satisfied_by({})

    def test_satisfied_by_without_conditions(self):
        assert Step("friend").satisfied_by({})

    def test_text_form_minimal(self):
        assert Step("friend").to_text() == "friend+[1]"

    def test_text_form_full(self):
        step = Step(
            "colleague",
            direction=Direction.ANY,
            depths=DepthInterval(1, 3),
            conditions=(AttributeCondition("age", ">=", 18), AttributeCondition("city", "=", "paris")),
        )
        assert step.to_text() == "colleague*[1,3]{age >= 18, city = paris}"

    def test_str_matches_to_text(self):
        step = Step("parent", direction=Direction.INCOMING, depths=DepthInterval(2, 2))
        assert str(step) == "parent-[2]"
