"""Unit tests for the PolicyStore."""

from __future__ import annotations

import pytest

from repro.exceptions import ResourceNotFoundError, RuleNotFoundError, RuleValidationError
from repro.policy.resources import Resource
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore


@pytest.fixture
def store():
    store = PolicyStore()
    store.share("Alice", "photos", kind="album")
    store.share("Alice", "notes", kind="notes")
    store.share("David", "jokes", kind="notes")
    return store


class TestResources:
    def test_share_registers_resource(self, store):
        resource = store.resource("photos")
        assert resource.owner == "Alice"
        assert resource.metadata["kind"] == "album"

    def test_register_resource_idempotent_for_identical(self, store):
        store.register_resource(Resource("photos", "Alice", {"kind": "album"}))
        assert store.resource_count() == 3

    def test_register_conflicting_resource_rejected(self, store):
        with pytest.raises(RuleValidationError):
            store.register_resource(Resource("photos", "Mallory", {}))

    def test_missing_resource_raises(self, store):
        with pytest.raises(ResourceNotFoundError):
            store.resource("nothing")

    def test_has_resource(self, store):
        assert store.has_resource("photos")
        assert not store.has_resource("nothing")

    def test_resources_owned_by(self, store):
        owned = {resource.resource_id for resource in store.resources_owned_by("Alice")}
        assert owned == {"photos", "notes"}
        assert store.resources_owned_by("Nobody") == []

    def test_remove_resource_drops_its_rules(self, store):
        store.allow("photos", "friend+[1]")
        store.remove_resource("photos")
        assert not store.has_resource("photos")
        assert store.rule_count() == 0

    def test_remove_missing_resource_raises(self, store):
        with pytest.raises(ResourceNotFoundError):
            store.remove_resource("nothing")


class TestRules:
    def test_allow_generates_rule_ids(self, store):
        first = store.allow("photos", "friend+[1]")
        second = store.allow("photos", "colleague+[1]")
        assert first.rule_id != second.rule_id
        assert store.rule_count() == 2

    def test_allow_uses_resource_owner(self, store):
        rule = store.allow("jokes", "friend-[1]")
        assert rule.owner == "David"

    def test_allow_on_unknown_resource_raises(self, store):
        with pytest.raises(ResourceNotFoundError):
            store.allow("nothing", "friend")

    def test_add_rule_checks_owner(self, store):
        rule = AccessRule.build("photos", "Mallory", "friend")
        with pytest.raises(RuleValidationError):
            store.add_rule(rule)

    def test_add_rule_with_explicit_id(self, store):
        rule = AccessRule.build("photos", "Alice", "friend", rule_id="my-rule")
        stored = store.add_rule(rule)
        assert stored.rule_id == "my-rule"
        assert store.rule("my-rule") == stored

    def test_duplicate_rule_id_rejected(self, store):
        store.add_rule(AccessRule.build("photos", "Alice", "friend", rule_id="dup"))
        with pytest.raises(RuleValidationError):
            store.add_rule(AccessRule.build("notes", "Alice", "friend", rule_id="dup"))

    def test_rules_for(self, store):
        store.allow("photos", "friend+[1]")
        store.allow("photos", "colleague+[1]")
        store.allow("notes", "parent+[1]")
        assert len(store.rules_for("photos")) == 2
        assert len(store.rules_for("notes")) == 1
        assert store.rules_for("jokes") == []

    def test_rules_for_unknown_resource_raises(self, store):
        with pytest.raises(ResourceNotFoundError):
            store.rules_for("nothing")

    def test_remove_rule(self, store):
        rule = store.allow("photos", "friend+[1]")
        store.remove_rule(rule.rule_id)
        assert store.rules_for("photos") == []
        with pytest.raises(RuleNotFoundError):
            store.rule(rule.rule_id)

    def test_remove_missing_rule_raises(self, store):
        with pytest.raises(RuleNotFoundError):
            store.remove_rule("nothing")

    def test_len_counts_rules(self, store):
        store.allow("photos", "friend+[1]")
        assert len(store) == 1

    def test_allow_multi_condition_rule(self, store):
        rule = store.allow("photos", ["friend+[1,2]", "colleague+[1,2]"], description="close collaborators")
        assert rule.condition_count() == 2
        assert rule.description == "close collaborators"
