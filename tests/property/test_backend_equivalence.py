"""Seeded random-graph differential harness: all four backends must agree.

The safety net for the interned cluster-index refactor: deterministic
``random``-seeded graphs (including self-loops, parallel multi-label edges
and disconnected components) and random path expressions are thrown at every
backend — ``bfs`` (the oracle), ``dfs``, ``transitive-closure`` and
``cluster-index`` (both the interned default and the legacy string-id
matcher) — and each must return exactly the oracle's ``evaluate`` decisions
and ``find_targets`` audiences.

With ``GRAPH_SEEDS`` x ``EXPRESSIONS_PER_GRAPH`` the harness covers 250
seeded (graph, expression) cases; every graph with an even seed is forced to
contain at least one self-loop, exercising the fixed line-graph
self-succession semantics.

A second seeded harness differentials the **multi-source owner-bitset
audience sweep**: on every backend, ``find_targets_many`` — under every
planner outcome (``auto`` plus forced ``forward`` / ``reverse`` and the
per-owner ``batched`` baseline) — must return exactly the audiences of a
per-owner ``find_targets`` loop, including self-loops, duplicate owners,
empty owner lists and owners absent from the graph.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.social_graph import SocialGraph
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.compiled_search import SWEEP_DIRECTIONS
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.workloads.queries import random_expression

LABELS = ("friend", "colleague", "parent")
GRAPH_SEEDS = range(25)
EXPRESSIONS_PER_GRAPH = 10
EVALUATE_PAIRS_PER_EXPRESSION = 4
AUDIENCE_SOURCES_PER_EXPRESSION = 3
SWEEP_EXPRESSIONS_PER_GRAPH = 4


def random_social_graph(rng: random.Random) -> SocialGraph:
    """A small random labelled graph with the awkward shapes the index must survive.

    * **self-loops** — each user may relate to itself;
    * **multi-label edges** — several labels between the same ordered pair;
    * **disconnected components** — edge counts low enough that isolated
      users and separate islands appear regularly.
    """
    graph = SocialGraph(name="differential")
    count = rng.randint(3, 9)
    users = [f"u{i}" for i in range(count)]
    for user in users:
        graph.add_user(
            user,
            age=rng.randint(10, 70),
            gender=rng.choice(["female", "male"]),
        )
    edge_budget = rng.randint(0, 2 * count)
    for _ in range(edge_budget):
        source = rng.choice(users)
        # Self-loops with real probability; rng.random() keeps determinism.
        target = source if rng.random() < 0.15 else rng.choice(users)
        label = rng.choice(LABELS)
        if not graph.has_relationship(source, target, label):
            graph.add_relationship(source, target, label)
    return graph


def _force_self_loop(graph: SocialGraph, rng: random.Random) -> None:
    users = sorted(graph.users())
    user = rng.choice(users)
    label = rng.choice(LABELS)
    if not graph.has_relationship(user, user, label):
        graph.add_relationship(user, user, label)


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_backends_agree_on_seeded_random_cases(seed):
    rng = random.Random(1000 + seed)
    graph = random_social_graph(rng)
    if seed % 2 == 0:
        _force_self_loop(graph, rng)

    oracle = OnlineBFSEvaluator(graph)
    contenders = {
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
        "cluster-index-strings": ClusterIndexEvaluator(graph, interned=False).build(),
    }
    users = sorted(graph.users())

    for _case in range(EXPRESSIONS_PER_GRAPH):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _pair in range(EVALUATE_PAIRS_PER_EXPRESSION):
            source = rng.choice(users)
            target = rng.choice(users)
            expected = oracle.evaluate(
                source, target, expression, collect_witness=False
            ).reachable
            for name, backend in contenders.items():
                got = backend.evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                assert got == expected, (
                    seed, name, source, target, expression.to_text()
                )
        for _sweep in range(AUDIENCE_SOURCES_PER_EXPRESSION):
            source = rng.choice(users)
            expected_targets = oracle.find_targets(source, expression)
            for name, backend in contenders.items():
                assert backend.find_targets(source, expression) == expected_targets, (
                    seed, name, source, expression.to_text()
                )


def test_case_budget_meets_the_acceptance_floor():
    """The harness must cover at least 200 seeded (graph, expression) cases."""
    assert len(GRAPH_SEEDS) * EXPRESSIONS_PER_GRAPH >= 200


def _audience_backends(graph):
    return {
        "bfs": OnlineBFSEvaluator(graph),
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
    }


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_multisource_sweep_matches_per_owner_find_targets(seed):
    """Multi-source sweep == per-owner loop, under every forced planner choice.

    Owner sets cover the batch shapes the engine actually sees: the empty
    batch, the whole vertex set (where the reverse sweep's cost converges on
    the forward one's) and random subsets with duplicates.
    """
    rng = random.Random(42_000 + seed)
    graph = random_social_graph(rng)
    if seed % 2 == 0:
        _force_self_loop(graph, rng)
    backends = _audience_backends(graph)
    users = sorted(graph.users())

    for _case in range(SWEEP_EXPRESSIONS_PER_GRAPH):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        subset = rng.sample(users, rng.randint(1, len(users)))
        owner_sets = [[], users, subset, subset + [subset[0]]]  # incl. duplicates
        for owners in owner_sets:
            for name, backend in backends.items():
                per_owner = {
                    owner: backend.find_targets(owner, expression) for owner in owners
                }
                for direction in SWEEP_DIRECTIONS:
                    got = backend.find_targets_many(
                        owners, expression, direction=direction
                    )
                    assert got == per_owner, (
                        seed, name, direction, owners, expression.to_text()
                    )


def test_absent_owners_follow_each_backends_contract():
    """Batched sweeps mirror ``find_targets`` for owners missing from the graph.

    The online/closure backends raise ``NodeNotFoundError`` exactly like the
    per-owner call; the cluster index answers from its build-time snapshot
    and quietly reports an empty audience instead.
    """
    graph = SocialGraph()
    for user in ("a", "b"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "b", "friend")
    from repro.policy.path_expression import PathExpression

    expression = PathExpression.parse("friend+[1,2]")
    backends = _audience_backends(graph)
    for direction in SWEEP_DIRECTIONS:
        for name in ("bfs", "dfs", "transitive-closure"):
            with pytest.raises(NodeNotFoundError):
                backends[name].find_targets_many(
                    ["a", "ghost"], expression, direction=direction
                )
        cluster = backends["cluster-index"]
        audiences = cluster.find_targets_many(
            ["a", "ghost"], expression, direction=direction
        )
        assert audiences == {"a": cluster.find_targets("a", expression), "ghost": set()}


@pytest.mark.filterwarnings("default:.*deprecated side-channel")
def test_forced_directions_are_recorded_on_the_plan():
    """Pinning the planner must be visible on ``last_sweep_plan``.

    This test covers the legacy side-channel contract itself, so the
    repo-wide deprecation-as-error filter is relaxed.
    """
    rng = random.Random(77)
    graph = random_social_graph(rng)
    users = sorted(graph.users())
    from repro.policy.path_expression import PathExpression

    expression = PathExpression.parse("friend+[1,2]")
    for name, backend in _audience_backends(graph).items():
        for direction in ("forward", "reverse", "batched"):
            backend.find_targets_many(users, expression, direction=direction)
            plan = backend.last_sweep_plan
            assert plan is not None and plan.direction == direction, (name, direction)
            assert plan.forced
        backend.find_targets_many(users, expression)
        auto_plan = backend.last_sweep_plan
        assert auto_plan is not None and not auto_plan.forced
        assert auto_plan.direction in ("forward", "reverse")
        assert auto_plan.forward_cost >= 0 and auto_plan.reverse_cost >= 0


def test_self_loop_double_traversal_regression():
    """Seed bug: a query needing the same self-loop edge twice must agree with BFS.

    The string line graph used to forbid a vertex from succeeding itself, so
    the tuple <loop, loop> was unrepresentable and ``cluster-index`` denied
    queries the BFS oracle granted.
    """
    graph = SocialGraph()
    for user in ("a", "b"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "a", "friend")
    graph.add_relationship("a", "b", "friend")

    oracle = OnlineBFSEvaluator(graph)
    from repro.policy.path_expression import PathExpression

    for interned in (True, False):
        cluster = ClusterIndexEvaluator(graph, interned=interned).build()
        for text in ("friend+[2]", "friend+[2,3]", "friend*[3]", "friend+[1,4]"):
            expression = PathExpression.parse(text)
            for source in ("a", "b"):
                for target in ("a", "b"):
                    assert (
                        cluster.evaluate(source, target, expression,
                                         collect_witness=False).reachable
                        == oracle.evaluate(source, target, expression,
                                           collect_witness=False).reachable
                    ), (interned, text, source, target)
                assert cluster.find_targets(source, expression) == oracle.find_targets(
                    source, expression
                ), (interned, text, source)
    # The doubled self-loop itself must be reachable, with a two-step witness.
    cluster = ClusterIndexEvaluator(graph).build()
    result = cluster.evaluate("a", "a", PathExpression.parse("friend+[2]"))
    assert result.reachable
    assert result.witness is not None and result.witness.nodes() == ["a", "a", "a"]
