"""Seeded random-graph differential harness: all four backends must agree.

The safety net for the interned cluster-index refactor: deterministic
``random``-seeded graphs (including self-loops, parallel multi-label edges
and disconnected components) and random path expressions are thrown at every
backend — ``bfs`` (the oracle), ``dfs``, ``transitive-closure`` and
``cluster-index`` (both the interned default and the legacy string-id
matcher) — and each must return exactly the oracle's ``evaluate`` decisions
and ``find_targets`` audiences.

With ``GRAPH_SEEDS`` x ``EXPRESSIONS_PER_GRAPH`` the harness covers 250
seeded (graph, expression) cases; every graph with an even seed is forced to
contain at least one self-loop, exercising the fixed line-graph
self-succession semantics.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.social_graph import SocialGraph
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.workloads.queries import random_expression

LABELS = ("friend", "colleague", "parent")
GRAPH_SEEDS = range(25)
EXPRESSIONS_PER_GRAPH = 10
EVALUATE_PAIRS_PER_EXPRESSION = 4
AUDIENCE_SOURCES_PER_EXPRESSION = 3


def random_social_graph(rng: random.Random) -> SocialGraph:
    """A small random labelled graph with the awkward shapes the index must survive.

    * **self-loops** — each user may relate to itself;
    * **multi-label edges** — several labels between the same ordered pair;
    * **disconnected components** — edge counts low enough that isolated
      users and separate islands appear regularly.
    """
    graph = SocialGraph(name="differential")
    count = rng.randint(3, 9)
    users = [f"u{i}" for i in range(count)]
    for user in users:
        graph.add_user(
            user,
            age=rng.randint(10, 70),
            gender=rng.choice(["female", "male"]),
        )
    edge_budget = rng.randint(0, 2 * count)
    for _ in range(edge_budget):
        source = rng.choice(users)
        # Self-loops with real probability; rng.random() keeps determinism.
        target = source if rng.random() < 0.15 else rng.choice(users)
        label = rng.choice(LABELS)
        if not graph.has_relationship(source, target, label):
            graph.add_relationship(source, target, label)
    return graph


def _force_self_loop(graph: SocialGraph, rng: random.Random) -> None:
    users = sorted(graph.users())
    user = rng.choice(users)
    label = rng.choice(LABELS)
    if not graph.has_relationship(user, user, label):
        graph.add_relationship(user, user, label)


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_backends_agree_on_seeded_random_cases(seed):
    rng = random.Random(1000 + seed)
    graph = random_social_graph(rng)
    if seed % 2 == 0:
        _force_self_loop(graph, rng)

    oracle = OnlineBFSEvaluator(graph)
    contenders = {
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
        "cluster-index-strings": ClusterIndexEvaluator(graph, interned=False).build(),
    }
    users = sorted(graph.users())

    for _case in range(EXPRESSIONS_PER_GRAPH):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _pair in range(EVALUATE_PAIRS_PER_EXPRESSION):
            source = rng.choice(users)
            target = rng.choice(users)
            expected = oracle.evaluate(
                source, target, expression, collect_witness=False
            ).reachable
            for name, backend in contenders.items():
                got = backend.evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                assert got == expected, (
                    seed, name, source, target, expression.to_text()
                )
        for _sweep in range(AUDIENCE_SOURCES_PER_EXPRESSION):
            source = rng.choice(users)
            expected_targets = oracle.find_targets(source, expression)
            for name, backend in contenders.items():
                assert backend.find_targets(source, expression) == expected_targets, (
                    seed, name, source, expression.to_text()
                )


def test_case_budget_meets_the_acceptance_floor():
    """The harness must cover at least 200 seeded (graph, expression) cases."""
    assert len(GRAPH_SEEDS) * EXPRESSIONS_PER_GRAPH >= 200


def test_self_loop_double_traversal_regression():
    """Seed bug: a query needing the same self-loop edge twice must agree with BFS.

    The string line graph used to forbid a vertex from succeeding itself, so
    the tuple <loop, loop> was unrepresentable and ``cluster-index`` denied
    queries the BFS oracle granted.
    """
    graph = SocialGraph()
    for user in ("a", "b"):
        graph.add_user(user, age=30)
    graph.add_relationship("a", "a", "friend")
    graph.add_relationship("a", "b", "friend")

    oracle = OnlineBFSEvaluator(graph)
    from repro.policy.path_expression import PathExpression

    for interned in (True, False):
        cluster = ClusterIndexEvaluator(graph, interned=interned).build()
        for text in ("friend+[2]", "friend+[2,3]", "friend*[3]", "friend+[1,4]"):
            expression = PathExpression.parse(text)
            for source in ("a", "b"):
                for target in ("a", "b"):
                    assert (
                        cluster.evaluate(source, target, expression,
                                         collect_witness=False).reachable
                        == oracle.evaluate(source, target, expression,
                                           collect_witness=False).reachable
                    ), (interned, text, source, target)
                assert cluster.find_targets(source, expression) == oracle.find_targets(
                    source, expression
                ), (interned, text, source)
    # The doubled self-loop itself must be reachable, with a two-step witness.
    cluster = ClusterIndexEvaluator(graph).build()
    result = cluster.evaluate("a", "a", PathExpression.parse("friend+[2]"))
    assert result.reachable
    assert result.witness is not None and result.witness.nodes() == ["a", "a", "a"]
