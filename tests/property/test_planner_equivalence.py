"""Seeded differential harness for planner-driven backend auto-selection.

Whatever backend the :class:`~repro.service.planner.QueryPlanner` routes a
query to, the answer must be byte-identical to every *pinned* backend's —
auto-selection is an optimization, never a semantics change.  The harness
reuses the random-graph / random-expression generators of
``tests/property/test_backend_equivalence.py`` and drives
:class:`ReachQuery` and :class:`AudienceQuery` shapes through one
:class:`GraphService` per pin, including artificially inflated stability so
the amortization flip (auto building an index mid-stream) is exercised, not
just the cold online path.
"""

from __future__ import annotations

import random

import pytest

from repro.service import AudienceQuery, GraphService, ReachQuery
from repro.workloads.queries import random_expression
from tests.property.test_backend_equivalence import (
    LABELS,
    _force_self_loop,
    random_social_graph,
)

GRAPH_SEEDS = range(12)
EXPRESSIONS_PER_GRAPH = 6
PAIRS_PER_EXPRESSION = 3

PINS = ("bfs", "dfs", "transitive-closure", "cluster-index")


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_auto_selected_reach_equals_every_pinned_backend(seed):
    rng = random.Random(500_000 + seed)
    graph = random_social_graph(rng)
    if seed % 2 == 0:
        _force_self_loop(graph, rng)
    auto = GraphService(graph)
    # Half the seeds fast-forward the stability counter so the planner is
    # willing to build the cluster index mid-stream (the amortization flip).
    if seed % 2 == 1:
        auto._stability = 10**9
    pinned = {name: GraphService(graph, default_backend=name) for name in PINS}
    users = sorted(graph.users())

    for _case in range(EXPRESSIONS_PER_GRAPH):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _pair in range(PAIRS_PER_EXPRESSION):
            source, target = rng.choice(users), rng.choice(users)
            query = ReachQuery(source, target, expression, collect_witness=False)
            got = auto.execute(query)
            for name, service in pinned.items():
                expected = service.execute(query)
                assert expected.plan.backend == name
                assert got.reachable == expected.reachable, (
                    seed, name, got.plan.backend, source, target, expression.to_text()
                )


@pytest.mark.parametrize("seed", GRAPH_SEEDS)
def test_auto_selected_audiences_equal_every_pinned_backend(seed):
    rng = random.Random(600_000 + seed)
    graph = random_social_graph(rng)
    if seed % 2 == 0:
        _force_self_loop(graph, rng)
    auto = GraphService(graph)
    if seed % 2 == 1:
        auto._stability = 10**9
    pinned = {name: GraphService(graph, default_backend=name) for name in PINS}
    users = sorted(graph.users())

    for _case in range(EXPRESSIONS_PER_GRAPH // 2):
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        owners = tuple(rng.sample(users, rng.randint(1, len(users))))
        for direction in ("auto", "forward", "batched"):
            query = AudienceQuery(owners, expression, direction=direction)
            got = auto.execute(query)
            for name, service in pinned.items():
                expected = service.execute(query)
                assert dict(got.audiences) == dict(expected.audiences), (
                    seed, name, direction, owners, expression.to_text()
                )


def test_witnesses_are_valid_whatever_backend_ran():
    """Auto-selected witnesses must be real paths satisfying the expression."""
    rng = random.Random(9_999)
    graph = random_social_graph(rng)
    service = GraphService(graph)
    users = sorted(graph.users())
    found = 0
    for _ in range(40):
        expression = random_expression(rng, LABELS, max_steps=2, max_depth=2)
        source, target = rng.choice(users), rng.choice(users)
        result = service.reach(source, target, expression)
        if result.reachable and result.witness is not None:
            found += 1
            nodes = result.witness.nodes()
            assert nodes[0] == source and nodes[-1] == target
            # Every traversal is a real edge of the graph in the direction
            # it claims (the witness is a concrete, checkable path).
            for traversal in result.witness:
                relationship = traversal.relationship
                assert graph.has_relationship(
                    relationship.source, relationship.target, relationship.label
                )
    assert found  # the harness actually exercised witnesses
