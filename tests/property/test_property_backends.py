"""Property-based tests: every backend agrees with the BFS oracle.

These are the core correctness properties of the reproduction: on arbitrary
labelled social graphs and arbitrary (well-formed) path expressions, the
transitive-closure evaluator, the DFS evaluator and the cluster-index
evaluator must return exactly the decisions of the online BFS baseline.
"""

from __future__ import annotations

from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.social_graph import SocialGraph
from repro.policy.conditions import AttributeCondition
from repro.policy.path_expression import PathExpression
from repro.policy.steps import DepthInterval, Direction, Step
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.transitive_closure import TransitiveClosureEvaluator

LABELS = ("friend", "colleague", "parent")

SETTINGS = dict(
    max_examples=40,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


@st.composite
def social_graphs(draw, min_users=2, max_users=9):
    """A random labelled social graph with small integer user ids and attributes."""
    count = draw(st.integers(min_users, max_users))
    users = [f"u{i}" for i in range(count)]
    graph = SocialGraph(name="hypothesis")
    for user in users:
        graph.add_user(
            user,
            age=draw(st.integers(10, 70)),
            gender=draw(st.sampled_from(["female", "male"])),
        )
    possible_edges = [
        (source, target, label)
        for source in users
        for target in users
        if source != target
        for label in LABELS
    ]
    chosen = draw(
        st.lists(st.sampled_from(possible_edges), max_size=min(30, len(possible_edges)), unique=True)
    )
    for source, target, label in chosen:
        graph.add_relationship(source, target, label)
    return graph


@st.composite
def expressions(draw, max_steps=3, max_depth=3, allow_conditions=True):
    """A random well-formed path expression over the fixed label alphabet."""
    step_count = draw(st.integers(1, max_steps))
    steps = []
    for _ in range(step_count):
        low = draw(st.integers(1, max_depth))
        high = draw(st.integers(low, max_depth))
        conditions = ()
        if allow_conditions and draw(st.booleans()):
            conditions = (
                AttributeCondition(
                    "age",
                    draw(st.sampled_from([">=", "<", ">"])),
                    draw(st.integers(10, 70)),
                ),
            )
        steps.append(
            Step(
                label=draw(st.sampled_from(LABELS)),
                direction=draw(st.sampled_from(list(Direction))),
                depths=DepthInterval(low, high),
                conditions=conditions,
            )
        )
    return PathExpression.of(*steps)


@st.composite
def graph_and_query(draw, **expression_kwargs):
    graph = draw(social_graphs())
    users = sorted(graph.users())
    source = draw(st.sampled_from(users))
    target = draw(st.sampled_from(users))
    expression = draw(expressions(**expression_kwargs))
    return graph, source, target, expression


@given(graph_and_query())
@settings(**SETTINGS)
def test_dfs_agrees_with_bfs(data):
    graph, source, target, expression = data
    bfs = OnlineBFSEvaluator(graph)
    dfs = OnlineDFSEvaluator(graph)
    assert (
        dfs.evaluate(source, target, expression, collect_witness=False).reachable
        == bfs.evaluate(source, target, expression, collect_witness=False).reachable
    )


@given(graph_and_query())
@settings(**SETTINGS)
def test_transitive_closure_agrees_with_bfs(data):
    graph, source, target, expression = data
    bfs = OnlineBFSEvaluator(graph)
    tc = TransitiveClosureEvaluator(graph).build()
    assert (
        tc.evaluate(source, target, expression, collect_witness=False).reachable
        == bfs.evaluate(source, target, expression, collect_witness=False).reachable
    )


@given(graph_and_query(max_steps=2, max_depth=2))
@settings(**SETTINGS)
def test_cluster_index_agrees_with_bfs(data):
    graph, source, target, expression = data
    bfs = OnlineBFSEvaluator(graph)
    cluster = ClusterIndexEvaluator(graph).build()
    assert (
        cluster.evaluate(source, target, expression, collect_witness=False).reachable
        == bfs.evaluate(source, target, expression, collect_witness=False).reachable
    )


@given(graph_and_query(max_steps=2, max_depth=2, allow_conditions=False))
@settings(**SETTINGS)
def test_cluster_index_audiences_match_bfs(data):
    graph, source, _target, expression = data
    bfs = OnlineBFSEvaluator(graph)
    cluster = ClusterIndexEvaluator(graph).build()
    assert cluster.find_targets(source, expression) == bfs.find_targets(source, expression)


@given(graph_and_query())
@settings(**SETTINGS)
def test_bfs_witness_is_a_valid_answer(data):
    """Whenever BFS says reachable, the witness path must itself satisfy the query."""
    graph, source, target, expression = data
    bfs = OnlineBFSEvaluator(graph)
    result = bfs.evaluate(source, target, expression, collect_witness=True)
    if not result.reachable:
        return
    witness = result.witness
    assert witness is not None
    assert witness.start == source and witness.end == target
    assert expression.min_length() <= len(witness) <= expression.max_length()
    # Every traversed relationship exists in the graph.
    for traversal in witness:
        rel = traversal.relationship
        assert graph.has_relationship(rel.source, rel.target, rel.label)
    # The label run-lengths fit the per-step depth intervals, in order.
    runs = witness.label_runs()
    step_labels = [step.label for step in expression]
    # Merge consecutive identical labels across step boundaries conservatively:
    # just check the overall label multiset is drawn from the expression labels.
    assert {label for label, _count in runs} <= set(step_labels)
