"""Property-based tests for the path-expression language."""

from __future__ import annotations

from hypothesis import given, settings
from hypothesis import strategies as st

from repro.exceptions import PathExpressionSyntaxError, ReproError
from repro.policy.conditions import AttributeCondition
from repro.policy.path_expression import PathExpression
from repro.policy.steps import DepthInterval, Direction, Step

SETTINGS = dict(max_examples=100, deadline=None)

LABELS = st.from_regex(r"[A-Za-z_][A-Za-z0-9_]{0,10}", fullmatch=True)


@st.composite
def steps(draw):
    low = draw(st.integers(1, 5))
    high = draw(st.integers(low, 6))
    conditions = []
    for _ in range(draw(st.integers(0, 2))):
        conditions.append(
            AttributeCondition(
                draw(st.from_regex(r"[a-z_][a-z0-9_]{0,8}", fullmatch=True)),
                draw(st.sampled_from(["=", "!=", "<", "<=", ">", ">="])),
                draw(st.one_of(st.integers(-100, 100), st.sampled_from(["paris", "female", "engineer"]))),
            )
        )
    return Step(
        label=draw(LABELS),
        direction=draw(st.sampled_from(list(Direction))),
        depths=DepthInterval(low, high),
        conditions=tuple(conditions),
    )


@st.composite
def path_expressions(draw):
    return PathExpression.of(*[draw(steps()) for _ in range(draw(st.integers(1, 4)))])


@given(path_expressions())
@settings(**SETTINGS)
def test_to_text_parse_round_trip(expression):
    """Rendering and re-parsing an expression is the identity."""
    assert PathExpression.parse(expression.to_text()) == expression


@given(path_expressions())
@settings(**SETTINGS)
def test_lengths_are_consistent(expression):
    assert 1 <= expression.min_length() <= expression.max_length()
    assert expression.expansion_count() >= 1
    assert len(expression.labels()) == len(expression)


@given(path_expressions())
@settings(**SETTINGS)
def test_expansion_matches_declared_count_and_lengths(expression):
    from repro.reachability.query import expand_line_queries

    if expression.expansion_count() > 512:
        return
    queries = expand_line_queries(expression, limit=None)
    assert len(queries) == expression.expansion_count()
    for query in queries:
        assert expression.min_length() <= len(query) <= expression.max_length()
        # Hop labels follow the step order.
        step_indices = [hop.step_index for hop in query]
        assert step_indices == sorted(step_indices)
        closing = [hop.step_index for hop in query if hop.closes_step]
        assert closing == list(range(len(expression)))


@given(st.text(max_size=30))
@settings(**SETTINGS)
def test_parser_never_crashes_with_unexpected_exceptions(text):
    """Arbitrary garbage either parses or raises the library's own error type."""
    try:
        PathExpression.parse(text)
    except ReproError:
        pass  # PathExpressionSyntaxError (or a condition error wrapped into it)


@given(st.text(alphabet="abc+-*[]{},/ 0123456789", max_size=25))
@settings(**SETTINGS)
def test_parser_never_crashes_on_expression_like_garbage(text):
    try:
        PathExpression.parse(text)
    except PathExpressionSyntaxError:
        pass
