"""Property-based tests for the core data structures and index invariants."""

from __future__ import annotations

import networkx as nx
from hypothesis import HealthCheck, given, settings
from hypothesis import strategies as st

from repro.graph.io import from_json, to_json
from repro.graph.social_graph import SocialGraph
from repro.reachability.interval import IntervalLabeling, ReachabilityTable
from repro.reachability.scc import condense, strongly_connected_components
from repro.reachability.twohop import TwoHopCover, TwoHopIndex
from repro.storage.btree import BPlusTree

SETTINGS = dict(
    max_examples=50,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow, HealthCheck.data_too_large],
)


# --------------------------------------------------------------------------
# Strategies
# --------------------------------------------------------------------------

@st.composite
def digraphs(draw, max_nodes=12):
    """A random directed graph as an adjacency dict (possibly cyclic)."""
    count = draw(st.integers(1, max_nodes))
    nodes = list(range(count))
    adjacency = {node: [] for node in nodes}
    edges = draw(
        st.lists(
            st.tuples(st.sampled_from(nodes), st.sampled_from(nodes)),
            max_size=3 * count,
        )
    )
    for source, target in edges:
        if source != target and target not in adjacency[source]:
            adjacency[source].append(target)
    return adjacency


@st.composite
def dags(draw, max_nodes=12):
    """A random DAG (edges only from smaller to larger node ids)."""
    adjacency = draw(digraphs(max_nodes=max_nodes))
    return {node: [t for t in targets if t > node] for node, targets in adjacency.items()}


def _as_networkx(adjacency):
    graph = nx.DiGraph()
    graph.add_nodes_from(adjacency)
    for node, targets in adjacency.items():
        graph.add_edges_from((node, target) for target in targets)
    return graph


# --------------------------------------------------------------------------
# SCC / condensation
# --------------------------------------------------------------------------

@given(digraphs())
@settings(**SETTINGS)
def test_scc_partition_matches_networkx(adjacency):
    ours = {frozenset(component) for component in strongly_connected_components(adjacency)}
    reference = {frozenset(c) for c in nx.strongly_connected_components(_as_networkx(adjacency))}
    assert ours == reference


@given(digraphs())
@settings(**SETTINGS)
def test_condensation_preserves_reachability(adjacency):
    condensation = condense(adjacency)
    graph = _as_networkx(adjacency)
    dag = _as_networkx({k: list(v) for k, v in condensation.dag.items()})
    for source in adjacency:
        for target in adjacency:
            expected = nx.has_path(graph, source, target)
            s, t = condensation.component_of(source), condensation.component_of(target)
            actual = s == t or nx.has_path(dag, s, t)
            assert expected == actual


# --------------------------------------------------------------------------
# Interval labeling / reachability table
# --------------------------------------------------------------------------

@given(dags())
@settings(**SETTINGS)
def test_interval_labeling_equals_dag_reachability(adjacency):
    labeling = IntervalLabeling(adjacency)
    graph = _as_networkx(adjacency)
    for source in adjacency:
        for target in adjacency:
            assert labeling.reaches(source, target) == nx.has_path(graph, source, target)


@given(digraphs())
@settings(**SETTINGS)
def test_reachability_table_equals_digraph_reachability(adjacency):
    table = ReachabilityTable(adjacency)
    graph = _as_networkx(adjacency)
    for source in adjacency:
        for target in adjacency:
            assert table.reaches(source, target) == (
                source == target or nx.has_path(graph, source, target)
            )


# --------------------------------------------------------------------------
# 2-hop cover
# --------------------------------------------------------------------------

@given(dags())
@settings(**SETTINGS)
def test_two_hop_cover_equals_dag_reachability(adjacency):
    cover = TwoHopCover(adjacency)
    graph = _as_networkx(adjacency)
    for source in adjacency:
        for target in adjacency:
            assert cover.reachable(source, target) == nx.has_path(graph, source, target)


@given(digraphs())
@settings(**SETTINGS)
def test_two_hop_index_equals_digraph_reachability(adjacency):
    index = TwoHopIndex(adjacency)
    graph = _as_networkx(adjacency)
    for source in adjacency:
        for target in adjacency:
            assert index.reachable(source, target) == nx.has_path(graph, source, target)


@given(dags())
@settings(**SETTINGS)
def test_two_hop_labels_have_no_false_positives(adjacency):
    cover = TwoHopCover(adjacency)
    graph = _as_networkx(adjacency)
    for node in adjacency:
        for center in cover.lout[node]:
            assert nx.has_path(graph, node, center)
        for center in cover.lin[node]:
            assert nx.has_path(graph, center, node)


# --------------------------------------------------------------------------
# B+-tree vs dict model
# --------------------------------------------------------------------------

@given(
    st.lists(
        st.tuples(st.integers(0, 200), st.integers()),
        max_size=300,
    ),
    st.lists(st.integers(0, 200), max_size=50),
    st.integers(3, 16),
)
@settings(**SETTINGS)
def test_btree_behaves_like_a_sorted_dict(inserts, deletes, order):
    tree = BPlusTree(order=order)
    model = {}
    for key, value in inserts:
        tree.insert(key, value)
        model[key] = value
    for key in deletes:
        assert tree.delete(key) == (key in model)
        model.pop(key, None)
    assert len(tree) == len(model)
    assert list(tree.keys()) == sorted(model)
    for key, value in model.items():
        assert tree[key] == value
    lows = sorted(model)[: len(model) // 2]
    if lows:
        low, high = lows[0], lows[-1]
        assert [k for k, _ in tree.range(low, high)] == [k for k in sorted(model) if low <= k <= high]


# --------------------------------------------------------------------------
# Graph serialization
# --------------------------------------------------------------------------

@st.composite
def social_graphs(draw):
    count = draw(st.integers(1, 8))
    users = [f"u{i}" for i in range(count)]
    graph = SocialGraph(name="prop")
    for user in users:
        graph.add_user(user, age=draw(st.integers(10, 80)))
    edges = draw(
        st.lists(
            st.tuples(
                st.sampled_from(users),
                st.sampled_from(users),
                st.sampled_from(["friend", "colleague", "parent"]),
            ),
            max_size=20,
            unique=True,
        )
    )
    for source, target, label in edges:
        if source != target:
            graph.add_relationship(source, target, label, trust=0.5)
    return graph


@given(social_graphs())
@settings(**SETTINGS)
def test_json_round_trip_is_identity(graph):
    assert from_json(to_json(graph)) == graph
