"""Sharded-vs-unsharded differential harness: the router must change nothing.

The safety net for the community-sharding layer: 100+ seeded graphs
(planted-partition community graphs mixed with the awkward random shapes of
the backend harness — self-loops, multi-label edges, disconnected islands)
are partitioned at every shard count in {1, 2, 4, 8}, and every query shape
— point reach, audience sweeps under every planner direction (auto plus
forced forward / reverse / batched), access checks and bulk audiences —
must return exactly the unsharded answer.  Owners are drawn to straddle
shard boundaries (ghost users) whenever the partition produces any, and a
subset of seeds cross-checks the full four-backend panel, not just the bfs
oracle.

A churn stage replays bursts of mutations — boundary-edge removals and
re-adds, user removal and re-add, attribute rewrites that flip condition
outcomes — through the source graph, forces the shard mirrors down their
journal-replay (``delta``) refresh path, and differentials again.
"""

from __future__ import annotations

import random

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.generators import community_graph
from repro.graph.social_graph import SocialGraph
from repro.policy.engine import AccessControlEngine
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.reachability.engine import ReachabilityEngine
from repro.reachability.transitive_closure import TransitiveClosureEvaluator
from repro.sharding import ShardedGraph, ShardRouter, ShardSweepPlan
from repro.workloads.queries import random_expression

LABELS = ("friend", "colleague", "parent")
SEEDS = range(105)
SHARD_COUNTS = (1, 2, 4, 8)
#: Seeds on this stride differential the full four-backend panel (the rest
#: use the bfs oracle alone — the panel's own harness covers backend drift).
PANEL_STRIDE = 7
#: Seeds on this stride also run the access / bulk-audience engine shapes.
ACCESS_STRIDE = 5


def seeded_graph(seed: int, rng: random.Random) -> SocialGraph:
    """Community-structured on most seeds, adversarially random on the rest."""
    if seed % 3 != 2:
        graph = community_graph(
            rng.randint(16, 28),
            communities=rng.choice((2, 3, 4)),
            intra_edges_per_node=2,
            inter_fraction=0.2,
            seed=seed,
            prefix=f"s{seed}-",
        )
    else:
        graph = SocialGraph(name=f"shard-differential-{seed}")
        count = rng.randint(8, 16)
        users = [f"s{seed}-{i}" for i in range(count)]
        for user in users:
            graph.add_user(user, age=rng.randint(10, 70))
        for _ in range(rng.randint(count, 3 * count)):
            source = rng.choice(users)
            target = source if rng.random() < 0.15 else rng.choice(users)
            label = rng.choice(LABELS)
            if not graph.has_relationship(source, target, label):
                graph.add_relationship(source, target, label)
    # Every third seed gets a guaranteed self-loop on top.
    if seed % 3 == 0:
        users = sorted(graph.users(), key=str)
        user = users[seed % len(users)]
        if not graph.has_relationship(user, user, "friend"):
            graph.add_relationship(user, user, "friend")
    return graph


def pick_owners(
    rng: random.Random, sharded: ShardedGraph, users, count: int = 5
):
    """Owners biased onto shard boundaries (ghosts) when the cut has any."""
    boundary = sharded.boundary_users()
    owners = list(boundary[: count // 2])
    while len(owners) < count and users:
        owners.append(rng.choice(users))
    # Duplicates are part of the contract (dedup happens in the sweep).
    if owners:
        owners.append(owners[0])
    return owners


def _panel(graph):
    return {
        "dfs": OnlineDFSEvaluator(graph),
        "transitive-closure": TransitiveClosureEvaluator(graph).build(),
        "cluster-index": ClusterIndexEvaluator(graph).build(),
    }


@pytest.mark.parametrize("seed", SEEDS)
def test_sharded_answers_equal_unsharded(seed):
    rng = random.Random(9000 + seed)
    graph = seeded_graph(seed, rng)
    users = sorted(graph.users(), key=str)
    oracle = OnlineBFSEvaluator(graph)
    panel = _panel(graph) if seed % PANEL_STRIDE == 0 else {}

    expressions = [
        random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.3
        )
        for _ in range(2)
    ]
    directions = ["auto", ("forward", "reverse", "batched")[seed % 3]]

    for shards in SHARD_COUNTS:
        sharded = ShardedGraph(graph, shards=shards, seed=11)
        router = ShardRouter(sharded)
        owners = pick_owners(rng, sharded, users)
        for expression in expressions:
            text = expression.to_text()
            expected = {
                owner: oracle.find_targets(owner, expression)
                for owner in dict.fromkeys(owners)
            }
            for name, backend in panel.items():
                for owner, want in expected.items():
                    assert backend.find_targets(owner, expression) == want, (
                        seed, shards, name, owner, text,
                    )
            for direction in directions:
                audiences, plan = router.sweep_targets_many(
                    owners, expression, direction=direction
                )
                assert isinstance(plan, ShardSweepPlan)
                assert plan.partial_shards == ()  # unguarded: always complete
                for owner, want in expected.items():
                    assert audiences[owner] == want, (
                        seed, shards, direction, owner, text,
                    )
            for _pair in range(3):
                source = rng.choice(users)
                target = rng.choice(users)
                want = oracle.evaluate(
                    source, target, expression, collect_witness=False
                ).reachable
                got = router.evaluate(source, target, expression)
                assert got.reachable == want, (seed, shards, source, target, text)
        # Unknown users raise exactly like the unsharded evaluators.
        with pytest.raises(NodeNotFoundError):
            router.evaluate("no-such-user", users[0], expressions[0])
        with pytest.raises(NodeNotFoundError):
            router.sweep_targets_many(["no-such-user"], expressions[0])


@pytest.mark.parametrize("seed", [s for s in SEEDS if s % ACCESS_STRIDE == 0])
def test_sharded_access_and_bulk_equal_unsharded(seed):
    rng = random.Random(17000 + seed)
    graph = seeded_graph(seed, rng)
    users = sorted(graph.users(), key=str)
    store = PolicyStore()
    owner_a, owner_b = users[0], users[len(users) // 2]
    store.share(owner_a, "res-a")
    store.add_rule(AccessRule.build("res-a", owner_a, "friend+[1,2]"))
    store.share(owner_b, "res-b")
    store.add_rule(
        AccessRule.build("res-b", owner_b, "friend+[1]/colleague+[1]")
    )
    reference = AccessControlEngine(graph, store, backend="bfs")
    for shards in SHARD_COUNTS:
        router = ShardRouter(ShardedGraph(graph, shards=shards, seed=11))
        engine = ReachabilityEngine(graph, router)
        access = AccessControlEngine(graph, store, backend=engine)
        for requester in users[:: max(1, len(users) // 8)]:
            for resource in ("res-a", "res-b"):
                assert access.is_allowed(requester, resource) == (
                    reference.is_allowed(requester, resource)
                ), (seed, shards, requester, resource)
        got_bulk, _plans = access.audiences_with_plans(["res-a", "res-b"])
        want_bulk, _ref_plans = reference.audiences_with_plans(
            ["res-a", "res-b"]
        )
        assert got_bulk == want_bulk, (seed, shards)


def churn_burst(rng: random.Random, graph: SocialGraph, sharded: ShardedGraph):
    """~12 mutations biased across shard boundaries; valid in replay order."""
    ops = 0
    rels = list(graph.relationships())
    boundary = [
        rel
        for rel in rels
        if sharded.shard_of(rel.source) != sharded.shard_of(rel.target)
    ]
    # Remove two boundary edges, re-add one (the remove/re-add churn the
    # ghost bookkeeping must survive).
    for rel in boundary[:2]:
        graph.remove_relationship(rel.source, rel.target, rel.label)
        ops += 1
    if boundary:
        rel = boundary[0]
        graph.add_relationship(rel.source, rel.target, rel.label)
        ops += 1
    users = sorted(graph.users(), key=str)
    # Remove a user (preferring one that straddles a boundary) and re-add it.
    straddlers = sharded.boundary_users()
    victim = straddlers[0] if straddlers else users[0]
    home = sharded.shard_of(victim)
    graph.remove_user(victim)
    graph.add_user(victim, age=rng.randint(10, 70))
    ops += 2
    neighbor = rng.choice([user for user in users if user != victim])
    if not graph.has_relationship(victim, neighbor, "friend"):
        graph.add_relationship(victim, neighbor, "friend")
        ops += 1
    # Attribute churn that can flip condition outcomes, including a delete.
    target = rng.choice(users)
    graph.update_user(target, age=rng.randint(10, 70))
    ops += 1
    flip = rng.choice(users)
    attrs = graph.attributes(flip)
    attrs["age"] = rng.randint(10, 70)
    if "gender" in attrs:
        del attrs["gender"]
    while ops < 12:
        source, target = rng.choice(users), rng.choice(users)
        label = rng.choice(LABELS)
        if graph.has_relationship(source, target, label):
            graph.remove_relationship(source, target, label)
        else:
            graph.add_relationship(source, target, label)
        ops += 1
    return victim, home


@pytest.mark.parametrize("seed", [s for s in SEEDS if s % 4 == 0])
def test_churn_bursts_replay_through_the_delta_path(seed):
    rng = random.Random(23000 + seed)
    graph = seeded_graph(seed, rng)
    for shards in (2, 4):
        sharded = ShardedGraph(graph, shards=shards, seed=11)
        router = ShardRouter(sharded)
        expression = random_expression(
            rng, LABELS, max_steps=2, max_depth=2, condition_probability=0.4
        )
        router.sweep_targets_many(
            sorted(graph.users(), key=str)[:3], expression
        )  # warm the mirrors before the burst
        victim, home = churn_burst(rng, graph, sharded)
        owners = pick_owners(rng, sharded, sorted(graph.users(), key=str))
        oracle = OnlineBFSEvaluator(graph)
        expected = {
            owner: oracle.find_targets(owner, expression)
            for owner in dict.fromkeys(owners)
        }
        audiences, _plan = router.sweep_targets_many(owners, expression)
        assert sharded.refresh_outcomes["delta"] >= 1, (seed, shards)
        assert sharded.refresh_outcomes["rebuild"] == 0, (seed, shards)
        for owner, want in expected.items():
            assert audiences[owner] == want, (seed, shards, owner)
        # Stable assignment: the removed-and-re-added user kept its shard.
        assert sharded.shard_of(victim) == home, (seed, shards)


def test_case_budget_meets_the_acceptance_floor():
    """100+ generated graphs, each at every shard count in {1, 2, 4, 8}."""
    assert len(SEEDS) >= 100
    assert tuple(SHARD_COUNTS) == (1, 2, 4, 8)
