"""Unit tests for the step automaton used by the online evaluators."""

from __future__ import annotations

import pytest

from repro.policy.path_expression import PathExpression
from repro.reachability.automaton import AutomatonState, StepAutomaton


@pytest.fixture
def automaton():
    return StepAutomaton(PathExpression.parse("friend+[1,2]{age >= 18}/colleague-[1]"))


class TestStates:
    def test_start_state(self, automaton):
        assert automaton.start_state == AutomatonState(0, 0)

    def test_accepting_state(self, automaton):
        assert automaton.is_accepting(AutomatonState(2, 0))
        assert not automaton.is_accepting(AutomatonState(1, 0))

    def test_state_ordering_and_str(self):
        assert AutomatonState(0, 1) < AutomatonState(1, 0)
        assert "step=0" in str(AutomatonState(0, 1))

    def test_state_count_bound(self, automaton):
        assert automaton.state_count_bound() == (2 + 1) + (1 + 1) + 1


class TestTransitions:
    def test_edge_requirements_follow_current_step(self, automaton):
        label, forward, backward = automaton.edge_requirements(AutomatonState(0, 0))
        assert label == "friend" and forward and not backward
        label, forward, backward = automaton.edge_requirements(AutomatonState(1, 0))
        assert label == "colleague" and not forward and backward

    def test_can_traverse_more_respects_max_depth(self, automaton):
        assert automaton.can_traverse_more(AutomatonState(0, 0))
        assert automaton.can_traverse_more(AutomatonState(0, 1))
        assert not automaton.can_traverse_more(AutomatonState(0, 2))
        assert not automaton.can_traverse_more(AutomatonState(2, 0))

    def test_after_edge_increments_depth(self, automaton):
        assert automaton.after_edge(AutomatonState(0, 1)) == AutomatonState(0, 2)


class TestClosure:
    def test_no_advance_before_minimum_depth(self, automaton):
        states = automaton.closure(AutomatonState(0, 0), {"age": 30})
        assert states == [AutomatonState(0, 0)]

    def test_advance_when_depth_and_conditions_hold(self, automaton):
        states = automaton.closure(AutomatonState(0, 1), {"age": 30})
        assert states == [AutomatonState(0, 1), AutomatonState(1, 0)]

    def test_no_advance_when_conditions_fail(self, automaton):
        states = automaton.closure(AutomatonState(0, 1), {"age": 10})
        assert states == [AutomatonState(0, 1)]

    def test_advance_to_accepting_state(self, automaton):
        states = automaton.closure(AutomatonState(1, 1), {"age": 99})
        assert states == [AutomatonState(1, 1), AutomatonState(2, 0)]
        assert automaton.is_accepting(states[-1])

    def test_closure_of_accepting_state_is_itself(self, automaton):
        assert automaton.closure(AutomatonState(2, 0), {}) == [AutomatonState(2, 0)]

    def test_iteration_and_repr(self, automaton):
        assert [step.label for step in automaton] == ["friend", "colleague"]
        assert "friend" in repr(automaton)
