"""Unit tests for the online BFS evaluator (the correctness oracle)."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.graph.builder import GraphBuilder
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator


def expr(text):
    return PathExpression.parse(text)


@pytest.fixture
def evaluator(figure1):
    return OnlineBFSEvaluator(figure1).build()


class TestBasicSemantics:
    def test_direct_edge(self, evaluator):
        assert evaluator.evaluate("Alice", "Colin", expr("friend+[1]")).reachable
        assert not evaluator.evaluate("Alice", "George", expr("friend+[1]")).reachable

    def test_label_must_match(self, evaluator):
        assert evaluator.evaluate("Alice", "David", expr("colleague+[1]")).reachable
        assert not evaluator.evaluate("Alice", "David", expr("friend+[1]")).reachable

    def test_direction_outgoing_only(self, evaluator):
        # Colin -> David is a friend edge; the reverse query must fail.
        assert evaluator.evaluate("Colin", "David", expr("friend+[1]")).reachable
        assert not evaluator.evaluate("David", "Colin", expr("friend+[1]")).reachable

    def test_direction_incoming(self, evaluator):
        assert evaluator.evaluate("David", "Colin", expr("friend-[1]")).reachable
        assert not evaluator.evaluate("Colin", "David", expr("friend-[1]")).reachable

    def test_direction_any(self, evaluator):
        assert evaluator.evaluate("David", "Colin", expr("friend*[1]")).reachable
        assert evaluator.evaluate("Colin", "David", expr("friend*[1]")).reachable

    def test_depth_interval_lower_bound(self, evaluator):
        # Alice reaches David in exactly two friend hops (via Colin), not one.
        assert not evaluator.evaluate("Alice", "David", expr("friend+[1]")).reachable
        assert evaluator.evaluate("Alice", "David", expr("friend+[2]")).reachable
        assert evaluator.evaluate("Alice", "David", expr("friend+[1,2]")).reachable

    def test_depth_interval_upper_bound(self, evaluator):
        # George is three friend hops away (Alice-Bill-Elena-George).
        assert not evaluator.evaluate("Alice", "George", expr("friend+[1,2]")).reachable
        assert evaluator.evaluate("Alice", "George", expr("friend+[1,3]")).reachable

    def test_multi_step_order_matters(self, evaluator):
        assert evaluator.evaluate("Alice", "Fred", expr("friend+[2]/colleague+[1]")).reachable
        assert not evaluator.evaluate("Alice", "Fred", expr("colleague+[1]/friend+[2]")).reachable

    def test_attribute_conditions_on_step_end(self, evaluator):
        # Fred (age 12) fails an adults-only condition on the final step.
        assert evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]")).reachable
        assert not evaluator.evaluate(
            "Alice", "Fred", expr("friend+[1,2]/colleague+[1]{age >= 18}")
        ).reachable

    def test_attribute_conditions_on_intermediate_step(self, evaluator):
        # Path Alice -friend-> Colin -parent-> Fred; require the friend to be female (Colin is not).
        assert evaluator.evaluate("Alice", "Fred", expr("friend+[1]/parent+[1]")).reachable
        assert not evaluator.evaluate(
            "Alice", "Fred", expr("friend+[1]{gender = female}/parent+[1]")
        ).reachable

    def test_source_equals_target_needs_a_cycle(self, evaluator):
        # Bill <-> Elena is a friendship cycle, so Bill can reach himself in 2 hops.
        assert evaluator.evaluate("Bill", "Bill", expr("friend+[2]")).reachable
        # Alice has no cycle back to herself.
        assert not evaluator.evaluate("Alice", "Alice", expr("friend+[1,3]")).reachable

    def test_unknown_users_raise(self, evaluator):
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Nobody", "Alice", expr("friend"))
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Alice", "Nobody", expr("friend"))

    def test_statistics_are_trivial(self, evaluator):
        assert evaluator.statistics()["index_entries"] == 0


class TestWitnesses:
    def test_witness_matches_constraints(self, evaluator):
        result = evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]"))
        witness = result.witness
        assert witness.start == "Alice" and witness.end == "Fred"
        assert witness.labels()[-1] == "colleague"
        assert all(label == "friend" for label in witness.labels()[:-1])

    def test_bfs_returns_a_shortest_witness(self, evaluator):
        result = evaluator.evaluate("Alice", "David", expr("friend*[1,3]"))
        assert len(result.witness) == 2  # Alice-Colin-David (or Alice-Bill? no: Bill-David edge doesn't exist)

    def test_witness_can_be_skipped(self, evaluator):
        result = evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]"),
                                    collect_witness=False)
        assert result.reachable and result.witness is None

    def test_backward_traversals_in_witness(self, evaluator):
        result = evaluator.evaluate("David", "Colin", expr("friend-[1]"))
        assert result.witness.nodes() == ["David", "Colin"]
        assert not result.witness.traversals[0].forward


class TestFindTargets:
    def test_audience_of_direct_friends(self, evaluator):
        assert evaluator.find_targets("Alice", expr("friend+[1]")) == {"Colin", "Bill"}

    def test_audience_with_any_direction(self, evaluator):
        assert evaluator.find_targets("Fred", expr("friend*[1]")) == {"George"}
        assert evaluator.find_targets("Fred", expr("colleague-[1]")) == {"David"}

    def test_audience_of_empty_result(self, evaluator):
        assert evaluator.find_targets("George", expr("friend+[1]")) == set()

    def test_counters_populated(self, evaluator):
        result = evaluator.evaluate("Alice", "George", expr("friend+[1,3]"))
        assert result.counters["states_visited"] > 0
        assert result.counters["edges_expanded"] > 0


class TestIsolatedAndTinyGraphs:
    def test_isolated_users(self):
        graph = GraphBuilder().user("a").user("b").build()
        evaluator = OnlineBFSEvaluator(graph)
        assert not evaluator.evaluate("a", "b", expr("friend")).reachable

    def test_two_node_cycle(self):
        graph = GraphBuilder().relate("a", "b", "friend").relate("b", "a", "friend").build()
        evaluator = OnlineBFSEvaluator(graph)
        assert evaluator.evaluate("a", "a", expr("friend+[2]")).reachable
        assert evaluator.evaluate("a", "b", expr("friend+[1,5]")).reachable
        assert not evaluator.evaluate("a", "b", expr("friend+[2]")).reachable
