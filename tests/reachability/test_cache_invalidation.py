"""Cache-invalidation edge coverage: epochs, attribute writes, cache_size=0.

The contract under test (ROADMAP "Cache-invalidation contract"):

* every mutating :class:`SocialGraph` method bumps ``graph.epoch``;
* derived state (compiled snapshots, the engine's decision / target-set
  memos) records its build epoch and rebuilds when the epoch moves;
* ``graph.attributes(u)`` returns a live, epoch-aware
  :class:`~repro.graph.social_graph.AttributeMap`: reads are free of
  copying, while writes through it bump the epoch exactly like
  ``update_user`` (the historical write-through caveat is gone);
* ``cache_size=0`` disables the decision memo entirely.
"""

from __future__ import annotations

import pytest

from repro.graph.compiled import compile_graph
from repro.graph.social_graph import SocialGraph
from repro.reachability.engine import ReachabilityEngine


def two_user_graph() -> SocialGraph:
    graph = SocialGraph()
    graph.add_user("a", age=30)
    graph.add_user("b", age=40)
    graph.add_relationship("a", "b", "friend")
    return graph


class TestEveryMutatorBumpsTheEpoch:
    def test_add_user(self):
        graph = SocialGraph()
        before = graph.epoch
        graph.add_user("a")
        assert graph.epoch == before + 1

    def test_ensure_user_bumps_only_on_change(self):
        graph = SocialGraph()
        graph.ensure_user("a", age=30)
        after_add = graph.epoch
        graph.ensure_user("a")  # already present, nothing merged
        assert graph.epoch == after_add
        graph.ensure_user("a", age=31)  # attribute merge is a mutation
        assert graph.epoch == after_add + 1

    def test_update_user(self):
        graph = two_user_graph()
        before = graph.epoch
        graph.update_user("a", age=31)
        assert graph.epoch == before + 1

    def test_remove_user(self):
        graph = two_user_graph()
        before = graph.epoch
        graph.remove_user("b")
        assert graph.epoch > before

    def test_add_relationship(self):
        graph = two_user_graph()
        before = graph.epoch
        graph.add_relationship("b", "a", "colleague")
        assert graph.epoch == before + 1

    def test_reciprocal_add_bumps_for_each_edge(self):
        graph = two_user_graph()
        before = graph.epoch
        graph.add_relationship("a", "b", "colleague", reciprocal=True)
        assert graph.epoch == before + 2

    def test_remove_relationship(self):
        graph = two_user_graph()
        before = graph.epoch
        graph.remove_relationship("a", "b", "friend")
        assert graph.epoch == before + 1


class TestSnapshotFollowsTheEpoch:
    def test_snapshot_is_reused_between_mutations(self):
        graph = two_user_graph()
        assert compile_graph(graph) is compile_graph(graph)

    def test_snapshot_refreshes_after_any_mutation(self):
        graph = two_user_graph()
        snapshot = compile_graph(graph)
        graph.add_user("c")
        assert snapshot.is_stale()
        # Journal-covered gap: the same object is patched in place.
        refreshed = compile_graph(graph)
        assert refreshed is snapshot and not refreshed.is_stale()
        assert refreshed.index_of("c") == 2

    def test_snapshot_rebuilds_when_the_journal_cannot_cover_the_gap(self):
        graph = two_user_graph()
        graph.journal_limit = 0  # journaling off: every refresh is a rebuild
        snapshot = compile_graph(graph)
        graph.add_user("c")
        rebuilt = compile_graph(graph)
        assert rebuilt is not snapshot
        assert snapshot.is_stale() and not rebuilt.is_stale()

    def test_snapshot_tombstones_removed_users_in_place(self):
        graph = two_user_graph()
        snapshot = compile_graph(graph)
        graph.remove_user("b")
        # Removals no longer force a rebuild: the slot is tombstoned and the
        # same object patched in place (see test_delta_maintenance for the
        # full churn harness).
        patched = compile_graph(graph)
        assert patched is snapshot and not patched.is_stale()
        assert not patched.graph.has_user("b")
        assert "b" not in patched.node_index
        assert patched.number_of_live_nodes() == 1
        assert patched.delta_events["tombstones"] == 1

    def test_derived_indexes_die_with_their_snapshot(self):
        graph = two_user_graph()
        snapshot = compile_graph(graph)
        snapshot.derived["probe"] = object()
        graph.add_relationship("b", "a", "friend")
        # Unregistered derived entries are conservatively dropped by any
        # delta patch (and a full rebuild starts from an empty dict anyway).
        assert "probe" not in compile_graph(graph).derived


class TestAttributeWritesInvalidateCaches:
    """``graph.attributes(u)`` hands out a live epoch-aware view: reads stay
    current and free, writes invalidate cached decisions like ``update_user``."""

    def test_item_write_bumps_the_epoch_and_decision_memo(self):
        graph = two_user_graph()
        engine = ReachabilityEngine(graph, "bfs")
        expression = "friend+[1]{age >= 40}"
        assert engine.is_reachable("a", "b", expression)

        before = graph.epoch
        graph.attributes("b")["age"] = 10
        assert graph.epoch == before + 1
        assert not engine.is_reachable("a", "b", expression)

        # update_user remains equivalent (and the two paths compose).
        graph.update_user("b", age=45)
        assert engine.is_reachable("a", "b", expression)

    def test_condition_memo_sees_writes_even_without_the_decision_memo(self):
        graph = two_user_graph()
        engine = ReachabilityEngine(graph, "bfs", cache_size=0)
        expression = "friend+[1]{age >= 40}"
        assert engine.is_reachable("a", "b", expression)
        # cache_size=0 only disables the engine's decision memo; the compiled
        # automaton's per-(step, node) condition memo is epoch-scoped, and the
        # write bumps the epoch, so the new value is visible immediately.
        graph.attributes("b")["age"] = 10
        assert not engine.is_reachable("a", "b", expression)

    def test_mutable_mapping_methods_bump_too(self):
        graph = two_user_graph()
        attrs = graph.attributes("a")
        epoch = graph.epoch
        attrs.update(city="paris", age=31)
        assert graph.epoch > epoch
        epoch = graph.epoch
        assert attrs.pop("city") == "paris"
        assert graph.epoch == epoch + 1
        epoch = graph.epoch
        del attrs["age"]
        assert graph.epoch == epoch + 1
        assert dict(graph.attributes("a")) == {}

    def test_reads_do_not_bump(self):
        graph = two_user_graph()
        attrs = graph.attributes("a")
        epoch = graph.epoch
        assert attrs["age"] == 30
        assert attrs.get("missing") is None
        assert "age" in attrs and len(attrs) == 1
        assert attrs == {"age": 30}
        assert graph.epoch == epoch

    def test_snapshot_refreshes_after_attribute_write(self):
        graph = two_user_graph()
        snapshot = compile_graph(graph)
        graph.attributes("a")["age"] = 99
        assert snapshot.is_stale()
        # Attribute-only deltas are absorbed without structural work: same
        # object, and the shared attribute dicts already see the new value.
        refreshed = compile_graph(graph)
        assert refreshed is snapshot and not refreshed.is_stale()
        assert refreshed.attributes_of(refreshed.index_of("a"))["age"] == 99

    def test_target_set_memo_invalidated_by_mutation(self):
        graph = two_user_graph()
        engine = ReachabilityEngine(graph, "bfs")
        assert engine.find_targets("a", "friend+[1,2]") == {"b"}
        graph.add_user("c")
        graph.add_relationship("b", "c", "friend")
        assert engine.find_targets("a", "friend+[1,2]") == {"b", "c"}
        assert engine.find_targets_many(["a", "b"], "friend+[1,2]") == {
            "a": {"b", "c"},
            "b": {"c"},
        }


class TestCacheSizeZeroDisablesTheMemo:
    @pytest.mark.parametrize("backend", ["bfs", "dfs"])
    def test_no_entries_are_ever_stored(self, backend):
        graph = two_user_graph()
        engine = ReachabilityEngine(graph, backend, cache_size=0)
        for _ in range(3):
            assert engine.is_reachable("a", "b", "friend+[1]")
            assert engine.find_targets("a", "friend+[1]") == {"b"}
            assert engine.find_targets_many(["a", "b"], "friend+[1]") == {
                "a": {"b"},
                "b": set(),
            }
        info = engine.cache_info()
        assert info["hits"] == 0 and info["misses"] == 0
        assert info["decisions"] == 0 and info["target_sets"] == 0
        assert info["max_size"] == 0
