"""Unit tests for the cluster-index evaluator (the full Section-3 pipeline)."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError
from repro.graph.builder import GraphBuilder
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.workloads.queries import random_query_mix


def expr(text):
    return PathExpression.parse(text)


@pytest.fixture(scope="module")
def evaluator():
    from repro.datasets.paper_graph import paper_graph

    return ClusterIndexEvaluator(paper_graph()).build()


class TestLifecycle:
    def test_requires_build(self, figure1):
        raw = ClusterIndexEvaluator(figure1)
        with pytest.raises(IndexNotBuiltError):
            raw.evaluate("Alice", "Fred", expr("friend"))
        with pytest.raises(IndexNotBuiltError):
            raw.find_targets("Alice", expr("friend"))

    def test_unknown_users_raise(self, evaluator):
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Ghost", "Alice", expr("friend"))
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Alice", "Ghost", expr("friend"))

    def test_statistics(self, evaluator):
        stats = evaluator.statistics()
        assert stats["build_seconds"] > 0
        assert stats["line_vertices"] == 24  # oriented: two per relationship
        assert stats["index_entries"] > 0

    def test_statistics_before_build_are_empty(self, figure1):
        assert ClusterIndexEvaluator(figure1).statistics()["index_entries"] == 0.0

    def test_forward_only_index_rejects_backward_steps(self, figure1):
        evaluator = ClusterIndexEvaluator(figure1, include_reverse=False).build()
        assert evaluator.evaluate("Alice", "Colin", expr("friend+[1]")).reachable
        with pytest.raises(IndexNotBuiltError):
            evaluator.evaluate("David", "Colin", expr("friend-[1]"))
        with pytest.raises(IndexNotBuiltError):
            evaluator.find_targets("David", expr("friend*[1]"))


class TestSemantics:
    def test_single_hop(self, evaluator):
        assert evaluator.evaluate("Alice", "Colin", expr("friend+[1]")).reachable
        assert not evaluator.evaluate("Alice", "George", expr("friend+[1]")).reachable

    def test_depth_intervals(self, evaluator):
        assert evaluator.evaluate("Alice", "David", expr("friend+[1,2]")).reachable
        assert not evaluator.evaluate("Alice", "David", expr("friend+[1]")).reachable
        assert not evaluator.evaluate("Alice", "George", expr("friend+[1,2]")).reachable
        assert evaluator.evaluate("Alice", "George", expr("friend+[3]")).reachable

    def test_directions(self, evaluator):
        assert evaluator.evaluate("David", "Colin", expr("friend-[1]")).reachable
        assert evaluator.evaluate("Colin", "David", expr("friend*[1]")).reachable
        assert not evaluator.evaluate("Colin", "David", expr("friend-[1]")).reachable

    def test_attribute_conditions(self, evaluator):
        assert evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]")).reachable
        assert not evaluator.evaluate(
            "Alice", "Fred", expr("friend+[1,2]/colleague+[1]{age >= 18}")
        ).reachable

    def test_intermediate_conditions(self, evaluator):
        assert not evaluator.evaluate(
            "Alice", "Fred", expr("friend+[1]{gender = female}/parent+[1]")
        ).reachable

    def test_witness_is_a_valid_path(self, evaluator):
        result = evaluator.evaluate("Alice", "George", expr("friend+[1]/parent+[1]/friend+[1]"))
        assert result.reachable
        witness = result.witness
        assert witness.nodes() == ["Alice", "Colin", "Fred", "George"]
        assert witness.labels() == ["friend", "parent", "friend"]

    def test_witness_with_backward_traversal(self, evaluator):
        result = evaluator.evaluate("David", "Bill", expr("friend-[1]/friend+[1]"))
        assert result.reachable
        witness = result.witness
        assert witness.start == "David" and witness.end == "Bill"
        assert not witness.traversals[0].forward

    def test_collect_witness_false(self, evaluator):
        result = evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]"),
                                    collect_witness=False)
        assert result.reachable and result.witness is None

    def test_find_targets(self, evaluator):
        assert evaluator.find_targets("Alice", expr("friend+[1]")) == {"Colin", "Bill"}
        assert evaluator.find_targets("Alice", expr("friend+[1,2]/colleague+[1]")) == {"Fred"}

    def test_counters_report_pipeline_work(self, evaluator):
        result = evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]"))
        assert result.counters["line_queries"] >= 1
        assert result.counters["join_checks"] >= 1
        assert result.counters["tuples_examined"] >= 1

    def test_cycle_back_to_source(self, evaluator):
        assert evaluator.evaluate("Bill", "Bill", expr("friend+[2]")).reachable
        assert not evaluator.evaluate("Alice", "Alice", expr("friend+[1,3]")).reachable


class TestAgreementWithBFS:
    def test_exhaustive_agreement_on_figure1(self, evaluator):
        graph = evaluator.graph
        bfs = OnlineBFSEvaluator(graph)
        expressions = [
            "friend+[1]", "friend+[1,2]", "friend+[1,3]", "friend-[1]", "friend*[1,2]",
            "friend+[1,2]/colleague+[1]", "friend+[1]/parent+[1]/friend+[1]",
            "colleague+[1]/friend+[1,2]", "parent-[1]/friend-[1]", "colleague*[1,2]",
            "friend+[2]/friend-[1]", "friend*[1,2]{age >= 18}",
        ]
        for text in expressions:
            expression = expr(text)
            for source in graph.users():
                assert bfs.find_targets(source, expression) == evaluator.find_targets(
                    source, expression
                ), (text, source)

    def test_agreement_on_random_graph(self, small_random_graph):
        evaluator = ClusterIndexEvaluator(small_random_graph).build()
        bfs = OnlineBFSEvaluator(small_random_graph)
        for source, target, expression in random_query_mix(
            small_random_graph, 40, seed=21, max_steps=2, max_depth=2
        ):
            assert (
                evaluator.evaluate(source, target, expression, collect_witness=False).reachable
                == bfs.evaluate(source, target, expression, collect_witness=False).reachable
            ), (source, target, expression.to_text())


class TestSmallGraphs:
    def test_graph_with_no_edges(self):
        graph = GraphBuilder().user("a").user("b").build()
        evaluator = ClusterIndexEvaluator(graph).build()
        assert not evaluator.evaluate("a", "b", expr("friend")).reachable

    def test_single_edge(self):
        graph = GraphBuilder().relate("a", "b", "friend").build()
        evaluator = ClusterIndexEvaluator(graph).build()
        assert evaluator.evaluate("a", "b", expr("friend")).reachable
        assert not evaluator.evaluate("b", "a", expr("friend")).reachable
        assert evaluator.evaluate("b", "a", expr("friend-[1]")).reachable

    @pytest.mark.parametrize("interned", [True, False])
    def test_self_loop_traversed_twice(self, interned):
        """Regression (seed bug): a self-loop edge may be walked repeatedly."""
        graph = GraphBuilder().relate("a", "a", "friend").build()
        evaluator = ClusterIndexEvaluator(graph, interned=interned).build()
        assert evaluator.evaluate("a", "a", expr("friend+[2]")).reachable
        assert evaluator.evaluate("a", "a", expr("friend+[3]")).reachable
        assert evaluator.find_targets("a", expr("friend+[2]")) == {"a"}

    @pytest.mark.parametrize("interned", [True, False])
    def test_users_added_after_build_answer_stale_not_crash(self, interned):
        """Offline index semantics: post-build users are unknown, not errors."""
        graph = GraphBuilder().relate("a", "b", "friend").build()
        evaluator = ClusterIndexEvaluator(graph, interned=interned).build()
        graph.add_user("c")
        graph.add_relationship("c", "a", "friend")
        assert not evaluator.evaluate("c", "b", expr("friend+[1,2]")).reachable
        assert not evaluator.evaluate("a", "c", expr("friend+[1]")).reachable
        assert evaluator.find_targets("c", expr("friend+[1]")) == set()

    def test_interned_flag_off_still_matches_interned_results(self, figure1):
        interned = ClusterIndexEvaluator(figure1).build()
        strings = ClusterIndexEvaluator(figure1, interned=False).build()
        for text in ["friend+[1,2]", "friend+[1]/parent+[1]", "friend*[1,2]"]:
            expression = expr(text)
            for source in figure1.users():
                assert interned.find_targets(source, expression) == strings.find_targets(
                    source, expression
                ), (text, source)
