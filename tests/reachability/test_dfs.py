"""Unit tests for the online DFS evaluator (must agree with BFS everywhere)."""

from __future__ import annotations

import pytest

from repro.exceptions import NodeNotFoundError
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.dfs import OnlineDFSEvaluator
from repro.workloads.queries import random_query_mix


def expr(text):
    return PathExpression.parse(text)


@pytest.fixture
def evaluator(figure1):
    return OnlineDFSEvaluator(figure1).build()


class TestSemantics:
    def test_direct_edge(self, evaluator):
        assert evaluator.evaluate("Alice", "Colin", expr("friend+[1]")).reachable
        assert not evaluator.evaluate("Colin", "Alice", expr("friend+[1]")).reachable

    def test_multi_step_with_conditions(self, evaluator):
        assert evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]")).reachable
        assert not evaluator.evaluate(
            "Alice", "Fred", expr("friend+[1,2]/colleague+[1]{age >= 18}")
        ).reachable

    def test_witness_is_valid_even_if_not_shortest(self, evaluator):
        result = evaluator.evaluate("Alice", "George", expr("friend+[1,3]"))
        assert result.reachable
        witness = result.witness
        assert witness.start == "Alice" and witness.end == "George"
        assert set(witness.labels()) == {"friend"}
        assert 1 <= len(witness) <= 3

    def test_find_targets(self, evaluator):
        assert evaluator.find_targets("Alice", expr("friend+[1]")) == {"Colin", "Bill"}

    def test_unknown_user_raises(self, evaluator):
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Ghost", "Alice", expr("friend"))

    def test_counters_and_statistics(self, evaluator):
        result = evaluator.evaluate("Alice", "George", expr("friend+[1,3]"))
        assert result.counters["states_visited"] > 0
        assert evaluator.statistics()["index_entries"] == 0

    def test_collect_witness_false(self, evaluator):
        result = evaluator.evaluate("Alice", "Colin", expr("friend"), collect_witness=False)
        assert result.reachable and result.witness is None


class TestAgreementWithBFS:
    def test_same_decisions_on_figure1(self, figure1):
        bfs = OnlineBFSEvaluator(figure1)
        dfs = OnlineDFSEvaluator(figure1)
        expressions = [
            "friend+[1]", "friend+[1,2]", "friend+[1,3]", "friend-[1,2]", "friend*[1,2]",
            "friend+[1,2]/colleague+[1]", "friend+[1]/parent+[1]/friend+[1]",
            "colleague+[1]/friend*[1,2]", "parent-[1]/friend-[1]",
        ]
        users = sorted(figure1.users())
        for text in expressions:
            expression = expr(text)
            for source in users:
                assert bfs.find_targets(source, expression) == dfs.find_targets(source, expression), (
                    text, source
                )

    def test_same_decisions_on_random_graph(self, small_random_graph):
        bfs = OnlineBFSEvaluator(small_random_graph)
        dfs = OnlineDFSEvaluator(small_random_graph)
        for source, target, expression in random_query_mix(small_random_graph, 60, seed=5):
            assert (
                bfs.evaluate(source, target, expression, collect_witness=False).reachable
                == dfs.evaluate(source, target, expression, collect_witness=False).reachable
            ), (source, target, expression.to_text())
