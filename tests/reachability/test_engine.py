"""Unit tests for the backend registry and ReachabilityEngine facade."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownBackendError
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.engine import (
    BACKENDS,
    ReachabilityEngine,
    available_backends,
    create_evaluator,
)


class TestRegistry:
    def test_available_backends(self):
        assert available_backends() == ["bfs", "cluster-index", "dfs", "transitive-closure"]
        assert set(BACKENDS) == set(available_backends())

    def test_create_evaluator_builds_by_default(self, figure1):
        evaluator = create_evaluator("transitive-closure", figure1)
        assert evaluator.statistics()["index_entries"] > 0

    def test_create_evaluator_without_build(self, figure1):
        evaluator = create_evaluator("cluster-index", figure1, build=False)
        assert evaluator.statistics()["index_entries"] == 0.0

    def test_options_forwarded(self, figure1):
        evaluator = create_evaluator("cluster-index", figure1, include_reverse=False)
        assert evaluator.include_reverse is False

    def test_unknown_backend(self, figure1):
        with pytest.raises(UnknownBackendError) as excinfo:
            create_evaluator("oracle", figure1)
        assert "bfs" in str(excinfo.value)


class TestFacade:
    @pytest.fixture
    def engine(self, figure1):
        return ReachabilityEngine(figure1, "bfs")

    def test_evaluate_accepts_strings_and_expressions(self, engine):
        assert engine.evaluate("Alice", "Colin", "friend+[1]").reachable
        assert engine.evaluate("Alice", "Colin", PathExpression.parse("friend+[1]")).reachable

    def test_is_reachable(self, engine):
        assert engine.is_reachable("Alice", "Fred", "friend+[1,2]/colleague+[1]")
        assert not engine.is_reachable("Alice", "George", "colleague+[1]")

    def test_find_targets_accepts_strings(self, engine):
        assert engine.find_targets("Alice", "friend+[1]") == {"Colin", "Bill"}

    def test_backend_name_exposed(self, engine):
        assert engine.backend_name == "bfs"
        assert "bfs" in repr(engine)

    def test_wrapping_a_prebuilt_evaluator(self, figure1):
        evaluator = OnlineBFSEvaluator(figure1)
        engine = ReachabilityEngine(figure1, evaluator)
        assert engine.evaluator is evaluator
        assert engine.is_reachable("Alice", "Colin", "friend")

    def test_statistics_passthrough(self, figure1):
        engine = ReachabilityEngine(figure1, "transitive-closure")
        assert engine.statistics()["index_entries"] > 0

    @pytest.mark.parametrize("backend", available_backends())
    def test_every_backend_through_the_facade(self, figure1, backend):
        engine = ReachabilityEngine(figure1, backend)
        assert engine.is_reachable("Alice", "Fred", "friend+[1,2]/colleague+[1]")
        assert not engine.is_reachable("George", "Alice", "friend+[1,3]")


class TestDecisionMemo:
    @pytest.fixture
    def engine(self, figure1):
        return ReachabilityEngine(figure1, "bfs")

    def test_repeated_decisions_hit_the_cache(self, engine):
        assert engine.is_reachable("Alice", "Colin", "friend+[1]")
        assert engine.cache_info()["misses"] == 1
        for _ in range(3):
            assert engine.is_reachable("Alice", "Colin", "friend+[1]")
        assert engine.cache_info()["hits"] == 3

    def test_string_and_parsed_expressions_share_entries(self, engine):
        engine.is_reachable("Alice", "Colin", "friend+[1]")
        engine.is_reachable("Alice", "Colin", PathExpression.parse("friend+[1]"))
        assert engine.cache_info()["hits"] == 1

    def test_mutation_invalidates_cached_decisions(self, figure1, engine):
        assert not engine.is_reachable("Alice", "George", "colleague+[1]")
        figure1.add_relationship("Alice", "George", "colleague")
        assert engine.is_reachable("Alice", "George", "colleague+[1]")
        figure1.remove_relationship("Alice", "George", "colleague")
        assert not engine.is_reachable("Alice", "George", "colleague+[1]")

    def test_find_targets_is_memoized_and_copies(self, engine):
        first = engine.find_targets("Alice", "friend+[1]")
        second = engine.find_targets("Alice", "friend+[1]")
        assert first == second == {"Colin", "Bill"}
        assert engine.cache_info()["hits"] == 1
        second.add("Mallory")  # caller-side mutation must not poison the memo
        assert engine.find_targets("Alice", "friend+[1]") == {"Colin", "Bill"}

    def test_cached_results_are_isolated_copies(self, engine):
        first = engine.evaluate("Alice", "Colin", "friend+[1]")
        first.counters["states_visited"] = 10_000
        second = engine.evaluate("Alice", "Colin", "friend+[1]")
        assert second.counters.get("states_visited", 0) != 10_000

    def test_cache_can_be_disabled(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs", cache_size=0)
        engine.is_reachable("Alice", "Colin", "friend+[1]")
        engine.is_reachable("Alice", "Colin", "friend+[1]")
        info = engine.cache_info()
        assert info["hits"] == 0 and info["decisions"] == 0

    def test_lru_eviction_respects_cache_size(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs", cache_size=2)
        users = ["Colin", "Bill", "David"]
        for user in users:
            engine.is_reachable("Alice", user, "friend+[1,2]")
        assert engine.cache_info()["decisions"] == 2

    def test_statistics_expose_cache_counts(self, engine):
        engine.is_reachable("Alice", "Colin", "friend+[1]")
        engine.is_reachable("Alice", "Colin", "friend+[1]")
        stats = engine.statistics()
        assert stats["decision_cache_hits"] == 1.0
        assert stats["decision_cache_misses"] == 1.0
