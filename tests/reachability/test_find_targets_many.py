"""Batched audience materialization: ``find_targets_many`` across the stack.

The batched sweep must be a pure optimization: for every backend and every
owner it returns exactly what a per-owner ``find_targets`` loop returns, it
composes with the engine's epoch-stamped target-set memo, and the policy
engine's bulk ``authorized_audiences`` matches the per-resource API.
"""

from __future__ import annotations

import pytest

from repro.policy.path_expression import PathExpression
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore
from repro.policy.engine import AccessControlEngine
from repro.reachability.engine import ReachabilityEngine, available_backends, create_evaluator


EXPRESSIONS = ["friend+[1]", "friend+[1,2]", "friend*[1,2]", "friend+[1,2]/colleague+[1]"]


class TestBackendsMatchThePerOwnerLoop:
    @pytest.mark.parametrize("backend", ["bfs", "dfs", "transitive-closure", "cluster-index"])
    def test_batched_equals_looped(self, backend, figure1):
        evaluator = create_evaluator(backend, figure1)
        owners = sorted(figure1.users())
        for text in EXPRESSIONS:
            expression = PathExpression.parse(text)
            batched = evaluator.find_targets_many(owners, expression)
            assert set(batched) == set(owners)
            for owner in owners:
                assert batched[owner] == evaluator.find_targets(owner, expression), (
                    backend, text, owner,
                )

    def test_uncompiled_bfs_falls_back_to_the_loop(self, figure1):
        evaluator = create_evaluator("bfs", figure1, compiled=False)
        expression = PathExpression.parse("friend+[1,2]")
        batched = evaluator.find_targets_many(["Alice", "Bill"], expression)
        assert batched == {
            "Alice": evaluator.find_targets("Alice", expression),
            "Bill": evaluator.find_targets("Bill", expression),
        }


class TestEngineFacade:
    def test_engine_batched_matches_singles(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        owners = sorted(figure1.users())
        audiences = engine.find_targets_many(owners, "friend+[1,2]")
        for owner in owners:
            assert audiences[owner] == engine.find_targets(owner, "friend+[1,2]")

    def test_warm_cache_serves_hits_and_computes_only_the_misses(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        engine.find_targets("Alice", "friend+[1]")
        assert engine.cache_info()["misses"] == 1
        audiences = engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        info = engine.cache_info()
        assert info["hits"] == 1  # Alice came from the memo
        assert info["misses"] == 2  # the original miss + Bill
        assert audiences["Alice"] == engine.find_targets("Alice", "friend+[1]")

    def test_duplicate_owners_are_deduplicated(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs", cache_size=0)
        audiences = engine.find_targets_many(["Alice", "Alice", "Bill"], "friend+[1]")
        assert set(audiences) == {"Alice", "Bill"}

    def test_results_are_private_copies(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        first = engine.find_targets_many(["Alice"], "friend+[1]")["Alice"]
        first.add("intruder")
        assert "intruder" not in engine.find_targets("Alice", "friend+[1]")

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_every_backend_is_dispatchable_through_the_facade(self, backend, figure1):
        engine = ReachabilityEngine(figure1, backend)
        reference = ReachabilityEngine(figure1, "bfs", cache_size=0)
        owners = ["Alice", "David", "George"]
        audiences = engine.find_targets_many(owners, "friend*[1,2]")
        for owner in owners:
            assert audiences[owner] == reference.find_targets(owner, "friend*[1,2]"), (
                backend, owner,
            )


class TestPolicyBulkAudiences:
    def _store(self) -> PolicyStore:
        store = PolicyStore()
        store.share("Alice", "photos")
        store.add_rule(AccessRule.build("photos", "Alice", "friend+[1,2]/colleague+[1]"))
        store.share("David", "jokes")
        store.add_rule(AccessRule.build("jokes", "David", "friend*[1]"))
        store.share("Alice", "unprotected")
        return store

    def test_bulk_matches_per_resource(self, figure1):
        engine = AccessControlEngine(figure1, self._store(), backend="bfs")
        bulk = engine.authorized_audiences(["photos", "jokes", "unprotected"])
        for resource_id in ("photos", "jokes", "unprotected"):
            assert bulk[resource_id] == engine.authorized_audience(resource_id), resource_id

    def test_bulk_shares_sweeps_across_resources(self, figure1):
        store = self._store()
        # A second resource reusing Alice's expression must not re-sweep.
        store.share("Alice", "more-photos")
        store.add_rule(AccessRule.build("more-photos", "Alice", "friend+[1,2]/colleague+[1]"))
        engine = AccessControlEngine(figure1, store, backend="bfs")
        bulk = engine.authorized_audiences(["photos", "more-photos"])
        assert bulk["photos"] == bulk["more-photos"]
        # Exactly one target-set computation happened for the shared sweep.
        assert engine.reachability.cache_info()["misses"] == 1
