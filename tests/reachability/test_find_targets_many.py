"""Batched audience materialization: ``find_targets_many`` across the stack.

The batched sweep must be a pure optimization: for every backend and every
owner it returns exactly what a per-owner ``find_targets`` loop returns, it
composes with the engine's epoch-stamped target-set memo, and the policy
engine's bulk ``authorized_audiences`` matches the per-resource API.
"""

from __future__ import annotations

import pytest

from repro.policy.path_expression import PathExpression
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore
from repro.policy.engine import AccessControlEngine
from repro.reachability.engine import ReachabilityEngine, available_backends, create_evaluator


EXPRESSIONS = ["friend+[1]", "friend+[1,2]", "friend*[1,2]", "friend+[1,2]/colleague+[1]"]


class TestBackendsMatchThePerOwnerLoop:
    @pytest.mark.parametrize("backend", ["bfs", "dfs", "transitive-closure", "cluster-index"])
    def test_batched_equals_looped(self, backend, figure1):
        evaluator = create_evaluator(backend, figure1)
        owners = sorted(figure1.users())
        for text in EXPRESSIONS:
            expression = PathExpression.parse(text)
            batched = evaluator.find_targets_many(owners, expression)
            assert set(batched) == set(owners)
            for owner in owners:
                assert batched[owner] == evaluator.find_targets(owner, expression), (
                    backend, text, owner,
                )

    def test_uncompiled_bfs_falls_back_to_the_loop(self, figure1):
        evaluator = create_evaluator("bfs", figure1, compiled=False)
        expression = PathExpression.parse("friend+[1,2]")
        batched = evaluator.find_targets_many(["Alice", "Bill"], expression)
        assert batched == {
            "Alice": evaluator.find_targets("Alice", expression),
            "Bill": evaluator.find_targets("Bill", expression),
        }


class TestEngineFacade:
    def test_engine_batched_matches_singles(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        owners = sorted(figure1.users())
        audiences = engine.find_targets_many(owners, "friend+[1,2]")
        for owner in owners:
            assert audiences[owner] == engine.find_targets(owner, "friend+[1,2]")

    def test_warm_cache_serves_hits_and_computes_only_the_misses(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        engine.find_targets("Alice", "friend+[1]")
        assert engine.cache_info()["misses"] == 1
        audiences = engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        info = engine.cache_info()
        assert info["hits"] == 1  # Alice came from the memo
        assert info["misses"] == 2  # the original miss + Bill
        assert audiences["Alice"] == engine.find_targets("Alice", "friend+[1]")

    def test_duplicate_owners_are_deduplicated(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs", cache_size=0)
        audiences = engine.find_targets_many(["Alice", "Alice", "Bill"], "friend+[1]")
        assert set(audiences) == {"Alice", "Bill"}

    def test_results_are_private_copies(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        first = engine.find_targets_many(["Alice"], "friend+[1]")["Alice"]
        first.add("intruder")
        assert "intruder" not in engine.find_targets("Alice", "friend+[1]")

    @pytest.mark.parametrize("backend", sorted(available_backends()))
    def test_every_backend_is_dispatchable_through_the_facade(self, backend, figure1):
        engine = ReachabilityEngine(figure1, backend)
        reference = ReachabilityEngine(figure1, "bfs", cache_size=0)
        owners = ["Alice", "David", "George"]
        audiences = engine.find_targets_many(owners, "friend*[1,2]")
        for owner in owners:
            assert audiences[owner] == reference.find_targets(owner, "friend*[1,2]"), (
                backend, owner,
            )


class TestPolicyBulkAudiences:
    def _store(self) -> PolicyStore:
        store = PolicyStore()
        store.share("Alice", "photos")
        store.add_rule(AccessRule.build("photos", "Alice", "friend+[1,2]/colleague+[1]"))
        store.share("David", "jokes")
        store.add_rule(AccessRule.build("jokes", "David", "friend*[1]"))
        store.share("Alice", "unprotected")
        return store

    def test_bulk_matches_per_resource(self, figure1):
        engine = AccessControlEngine(figure1, self._store(), backend="bfs")
        bulk = engine.authorized_audiences(["photos", "jokes", "unprotected"])
        for resource_id in ("photos", "jokes", "unprotected"):
            assert bulk[resource_id] == engine.authorized_audience(resource_id), resource_id

    def test_bulk_shares_sweeps_across_resources(self, figure1):
        store = self._store()
        # A second resource reusing Alice's expression must not re-sweep.
        store.share("Alice", "more-photos")
        store.add_rule(AccessRule.build("more-photos", "Alice", "friend+[1,2]/colleague+[1]"))
        engine = AccessControlEngine(figure1, store, backend="bfs")
        bulk = engine.authorized_audiences(["photos", "more-photos"])
        assert bulk["photos"] == bulk["more-photos"]
        # Exactly one target-set computation happened for the shared sweep.
        assert engine.reachability.cache_info()["misses"] == 1


class TestDirectionPlanning:
    def test_every_direction_agrees_through_the_facade(self, figure1):
        owners = sorted(figure1.users())
        reference = None
        for direction in ("auto", "forward", "reverse", "batched"):
            engine = ReachabilityEngine(figure1, "bfs", cache_size=0)
            audiences = engine.find_targets_many(
                owners, "friend+[1,2]", direction=direction
            )
            if reference is None:
                reference = audiences
            assert audiences == reference, direction

    def test_unknown_direction_raises(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs", cache_size=0)
        with pytest.raises(ValueError):
            engine.find_targets_many(["Alice"], "friend+[1]", direction="sideways")

    def test_unknown_direction_raises_even_on_a_warm_cache(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        engine.find_targets_many(["Alice"], "friend+[1]")  # warm the memo
        with pytest.raises(ValueError):
            engine.find_targets_many(["Alice"], "friend+[1]", direction="sideways")

    @pytest.mark.filterwarnings("default:.*deprecated side-channel")
    def test_plan_is_recorded_and_cleared_when_served_from_cache(self, figure1):
        # This test covers the legacy side-channel's record/clear contract
        # itself, so the repo-wide deprecation-as-error filter is relaxed.
        engine = ReachabilityEngine(figure1, "bfs")
        assert engine.last_sweep_plan is None
        engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        plan = engine.last_sweep_plan
        assert plan is not None and plan.owners == 2
        # Fully warm: nothing is swept, so there is no plan to report.
        engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        assert engine.last_sweep_plan is None

    def test_policy_engine_records_plans_per_expression(self, figure1):
        store = PolicyStore()
        store.share("Alice", "photos")
        store.add_rule(AccessRule.build("photos", "Alice", "friend+[1,2]"))
        store.share("David", "jokes")
        store.add_rule(AccessRule.build("jokes", "David", "friend*[1]"))
        engine = AccessControlEngine(figure1, store, backend="bfs", cache_size=0)
        bulk, plans = engine.audiences_with_plans(
            ["photos", "jokes"], direction="forward"
        )
        assert set(plans) == {"friend+[1,2]", "friend*[1]"}
        for plan in plans.values():
            assert plan.direction == "forward" and plan.forced
        assert bulk == engine.authorized_audiences(["photos", "jokes"])


class TestReversedExpression:
    def test_steps_reverse_directions_flip_conditions_shift(self):
        from repro.reachability.compiled_search import reversed_expression

        expression = PathExpression.parse(
            "friend+[1,2]{age >= 18}/colleague-[1]/parent*[2,3]"
        )
        reversed_ = reversed_expression(expression)
        # Step order reversed, + <-> - flipped, * kept; conditions move one
        # step towards the owner and the last step's conditions disappear
        # (reverse sweeps apply them to their seeds instead).
        assert reversed_.to_text() == "parent*[2,3]/colleague+[1]{age >= 18}/friend-[1,2]"

    def test_reversal_is_an_involution_without_trailing_conditions(self):
        from repro.reachability.compiled_search import reversed_expression

        expression = PathExpression.parse("friend+[1,2]{age >= 18}/colleague-[1]")
        twice = reversed_expression(reversed_expression(expression))
        assert twice.to_text() == expression.to_text()

    def test_reversed_automaton_is_cached_on_the_snapshot(self, figure1):
        from repro.graph.compiled import compile_graph
        from repro.reachability.compiled_search import reversed_automaton

        snapshot = compile_graph(figure1)
        expression = PathExpression.parse("friend+[1,2]")
        first = reversed_automaton(snapshot, expression)
        assert reversed_automaton(snapshot, expression) is first
        figure1.add_relationship("Bill", "Alice", "colleague")
        rebuilt = compile_graph(figure1)
        assert reversed_automaton(rebuilt, expression) is not first


class TestClusterSweepSeesLiveAttributes:
    """Regression: the cluster backend's batched sweep answers from its
    frozen build-time snapshot, but that snapshot shares *live* attribute
    dicts with the graph — so condition outcomes must track attribute
    mutations exactly like the per-owner matcher (which re-reads them every
    call), not freeze at first evaluation."""

    def test_attribute_mutation_between_sweeps(self):
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        graph.add_user("o", age=50)
        graph.add_user("a", age=70)
        graph.add_user("b", age=10)
        graph.add_relationship("o", "a", "friend")
        graph.add_relationship("o", "b", "friend")
        evaluator = create_evaluator("cluster-index", graph)
        expression = PathExpression.parse("friend+[1]{age >= 60}")

        for direction in ("forward", "reverse", "batched"):
            assert evaluator.find_targets_many(
                ["o"], expression, direction=direction
            ) == {"o": {"a"}}
        graph.update_user("b", age=99)
        for direction in ("forward", "reverse", "batched"):
            assert evaluator.find_targets_many(
                ["o"], expression, direction=direction
            ) == {"o": evaluator.find_targets("o", expression)}, direction
            assert evaluator.find_targets_many(["o"], expression)["o"] == {"a", "b"}


class TestClusterSweepEnforcesTheExpansionLimit:
    def test_batched_raises_exactly_like_the_per_owner_call(self):
        from repro.exceptions import QueryError
        from repro.graph.social_graph import SocialGraph

        graph = SocialGraph()
        graph.add_user("a")
        graph.add_user("b")
        graph.add_relationship("a", "b", "friend")
        evaluator = create_evaluator("cluster-index", graph, expansion_limit=2)
        wide = PathExpression.parse("friend+[1,3]/friend+[1,3]")  # 9 expansions
        with pytest.raises(QueryError):
            evaluator.find_targets("a", wide)
        # Same guard on the sweep: otherwise the engine's shared (owner,
        # expression) memo would make the per-owner call's outcome depend on
        # whether a batched call happened to run first.
        with pytest.raises(QueryError):
            evaluator.find_targets_many(["a"], wide)
