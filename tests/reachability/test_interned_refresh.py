"""Bounded incremental re-condensation of the interned cluster index.

Differential property harness: after a journaled churn burst,
``InternedLineIndex.refresh_from_ops`` must leave the index
indistinguishable from one built fresh over the final graph — the full
live-vertex reachability matrix, the Definition-5 labeling size, the line
edge count and the per-component representatives all have to agree.  The
evaluator-level tests then check ``ClusterIndexEvaluator.refresh()`` mode
selection and that refreshed query answers agree with every other backend.
"""

from __future__ import annotations

import random

import pytest

from repro.graph.compiled import compile_graph
from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.cluster_engine import ClusterIndexEvaluator
from repro.reachability.interned import (
    REFRESH_REBUILD_FRACTION,
    InternedLineIndex,
    interned_line_index,
)

LABELS = ["friend", "follows", "coworker"]
REFRESH_SEEDS = range(120)


def sparse_graph(seed, users=30, edges=34):
    """A sparse random digraph (mean out-degree ~1, fine-grained line SCCs)."""
    rng = random.Random(seed)
    graph = SocialGraph()
    names = [f"u{i}" for i in range(users)]
    for name in names:
        graph.add_user(name, age=rng.randint(18, 60))
    added = set()
    while len(added) < edges:
        a, b = rng.sample(names, 2)
        label = rng.choice(LABELS)
        if (a, b, label) in added:
            continue
        graph.add_relationship(a, b, label)
        added.add((a, b, label))
    return graph, names, added, rng


def churn(graph, names, edges, rng, rounds, remove_user_prob=0.2):
    """Mixed burst: user removals, edge removals, edge adds, user adds."""
    edge_list = list(edges)
    for _ in range(rounds):
        roll = rng.random()
        if roll < remove_user_prob and len(names) > 4:
            victim = rng.choice(names)
            names.remove(victim)
            edge_list = [e for e in edge_list if victim not in (e[0], e[1])]
            graph.remove_user(victim)
        elif roll < 0.35 and edge_list:
            edge = rng.choice(edge_list)
            edge_list.remove(edge)
            graph.remove_relationship(*edge)
        elif roll < 0.8:
            a, b = rng.sample(names, 2)
            label = rng.choice(LABELS)
            if (a, b, label) not in edge_list:
                graph.add_relationship(a, b, label)
                edge_list.append((a, b, label))
        else:
            newbie = f"n{rng.randint(0, 10 ** 6)}"
            if newbie not in names:
                graph.add_user(newbie, age=rng.randint(18, 60))
                names.append(newbie)
                other = rng.choice(names[:-1])
                label = rng.choice(LABELS)
                graph.add_relationship(newbie, other, label)
                edge_list.append((newbie, other, label))
    edges.clear()
    edges.update(edge_list)


def fresh_copy(graph, names, edges):
    """Rebuild the final graph from scratch (deterministic edge order)."""
    out = SocialGraph()
    for name in names:
        out.add_user(name, **graph._nodes[name])
    for (a, b, label) in sorted(edges, key=str):
        out.add_relationship(a, b, label)
    return out


def reach_matrix(index):
    """Full reachability matrix over live vertices, keyed by decoded ids."""
    live = [v for v in range(index.count) if index.comp_of[v] >= 0]
    ids = {v: index.vertex_id(v) for v in live}
    return {(ids[a], ids[b]): index.reaches(a, b) for a in live for b in live}


def assert_indexes_equivalent(refreshed, fresh):
    assert reach_matrix(refreshed) == reach_matrix(fresh)
    assert refreshed.labeling_size() == fresh.labeling_size()
    assert refreshed.number_of_line_edges() == fresh.number_of_line_edges()
    assert sorted(refreshed.representative_names()) == sorted(
        fresh.representative_names()
    )


class TestRefreshFromOps:
    @pytest.mark.parametrize("seed", REFRESH_SEEDS)
    def test_incremental_refresh_matches_fresh_build(self, seed):
        graph, names, edges, rng = sparse_graph(seed)
        index = interned_line_index(graph, include_reverse=False, refresh=True)
        index.snapshot.pin()
        churn(graph, names, edges, rng, rounds=6)
        ops = graph.mutations_since(index.snapshot.epoch)
        assert ops is not None
        if not index.refresh_from_ops(ops):
            return  # touched-fraction fallback: the caller rebuilds
        assert index.refreshes == 1
        assert index.snapshot.epoch == graph.epoch
        fresh = InternedLineIndex(
            compile_graph(fresh_copy(graph, names, edges)), include_reverse=False
        )
        assert_indexes_equivalent(index, fresh)

    @pytest.mark.parametrize("seed", range(40))
    def test_repeated_refreshes_stay_equivalent(self, seed):
        """Three churn generations in a row exercise the maintained
        vertex map, tombstone accumulation and carried component sizes."""
        graph, names, edges, rng = sparse_graph(seed)
        index = interned_line_index(graph, include_reverse=False, refresh=True)
        index.snapshot.pin()
        for _generation in range(3):
            churn(graph, names, edges, rng, rounds=4)
            ops = graph.mutations_since(index.snapshot.epoch)
            assert ops is not None
            if not index.refresh_from_ops(ops):
                return
            fresh = InternedLineIndex(
                compile_graph(fresh_copy(graph, names, edges)),
                include_reverse=False,
            )
            assert_indexes_equivalent(index, fresh)

    @pytest.mark.parametrize("seed", range(40))
    def test_oriented_refresh_matches_fresh_build(self, seed):
        """The oriented (include_reverse) index usually has one giant line
        SCC, so removals mostly trip the threshold — but add-dominant bursts
        refresh incrementally and must agree with a fresh build."""
        graph, names, edges, rng = sparse_graph(seed)
        index = interned_line_index(graph, include_reverse=True, refresh=True)
        index.snapshot.pin()
        for _ in range(3):
            a, b = rng.sample(names, 2)
            label = rng.choice(LABELS)
            if (a, b, label) not in edges:
                graph.add_relationship(a, b, label)
                edges.add((a, b, label))
        ops = graph.mutations_since(index.snapshot.epoch)
        assert ops is not None
        assert index.refresh_from_ops(ops)
        fresh = InternedLineIndex(
            compile_graph(fresh_copy(graph, names, edges)), include_reverse=True
        )
        assert_indexes_equivalent(index, fresh)

    def test_remove_then_readd_same_edge_is_a_noop_for_the_vertex(self):
        graph, names, edges, rng = sparse_graph(7)
        index = interned_line_index(graph, include_reverse=False, refresh=True)
        index.snapshot.pin()
        edge = sorted(edges, key=str)[0]
        graph.remove_relationship(*edge)
        graph.add_relationship(*edge)
        ops = graph.mutations_since(index.snapshot.epoch)
        before = index.count
        assert index.refresh_from_ops(ops)
        assert index.count == before  # the vertex never left
        fresh = InternedLineIndex(
            compile_graph(fresh_copy(graph, names, edges)), include_reverse=False
        )
        assert_indexes_equivalent(index, fresh)

    def test_giant_component_removal_falls_back(self):
        """Touching more than REFRESH_REBUILD_FRACTION of the vertices must
        refuse the incremental path instead of doing hidden O(n) work."""
        graph = SocialGraph()
        for i in range(8):
            graph.add_user(f"u{i}")
        for i in range(8):
            graph.add_relationship(f"u{i}", f"u{(i + 1) % 8}", "friend")
        index = interned_line_index(graph, include_reverse=False, refresh=True)
        index.snapshot.pin()
        assert max(index.comp_sizes) == 8  # one cycle = one line SCC
        assert REFRESH_REBUILD_FRACTION < 1.0
        graph.remove_relationship("u0", "u1", "friend")
        ops = graph.mutations_since(index.snapshot.epoch)
        assert index.refresh_from_ops(ops) is False
        assert index.refreshes == 0


class TestEvaluatorRefresh:
    def expr(self, text):
        return PathExpression.parse(text)

    def test_refresh_modes(self):
        graph, names, edges, rng = sparse_graph(3)
        evaluator = ClusterIndexEvaluator(graph, include_reverse=False).build()
        assert evaluator.refresh() == "noop"
        a, b = names[0], names[-1]
        if (a, b, "friend") not in edges:
            graph.add_relationship(a, b, "friend")
        assert evaluator.refresh() == "incremental"
        assert evaluator.last_refresh_mode == "incremental"
        assert evaluator.refresh() == "noop"
        # A burst past the threshold (remove most edges) forces a rebuild.
        for edge in sorted(edges, key=str):
            graph.remove_relationship(*edge)
        assert evaluator.refresh() == "rebuild"
        assert evaluator.refresh_seconds == evaluator.build_seconds

    def test_refresh_without_journal_rebuilds(self):
        graph, _names, _edges, _rng = sparse_graph(4)
        graph.journal_limit = 0  # journaling off: no ops to replay
        evaluator = ClusterIndexEvaluator(graph, include_reverse=False).build()
        graph.add_relationship("u0", "u5", "friend")
        assert evaluator.refresh() == "rebuild"

    @pytest.mark.parametrize("seed", range(25))
    def test_refreshed_evaluator_agrees_with_every_backend(self, seed):
        graph, names, edges, rng = sparse_graph(seed)
        evaluator = ClusterIndexEvaluator(graph, include_reverse=False).build()
        churn(graph, names, edges, rng, rounds=5)
        mode = evaluator.refresh()
        assert mode in ("incremental", "rebuild")
        final = fresh_copy(graph, names, edges)
        rebuilt = ClusterIndexEvaluator(final, include_reverse=False).build()
        bfs = OnlineBFSEvaluator(final)
        expression = self.expr("friend+[1,2]/follows+[1,2]")
        probes = rng.sample(names, min(8, len(names)))
        for source in probes:
            want = bfs.find_targets(source, expression)
            assert evaluator.find_targets(source, expression) == want
            assert rebuilt.find_targets(source, expression) == want
        for source in probes[:4]:
            for target in probes[:4]:
                want = bfs.evaluate(source, target, expression).reachable
                got = evaluator.evaluate(source, target, expression).reachable
                assert got == want


class TestServiceRefreshIntegration:
    def test_facade_routes_stale_cluster_through_refresh(self):
        from repro.service.facade import GraphService

        graph, names, edges, rng = sparse_graph(11)
        service = GraphService(
            graph,
            backend_options={"cluster-index": {"include_reverse": False}},
        )
        engine = service.engine("cluster-index")
        assert engine.evaluator.last_refresh_mode is None  # first build
        a, b = names[0], names[-1]
        if (a, b, "friend") not in edges:
            graph.add_relationship(a, b, "friend")
        engine = service.engine("cluster-index")
        assert engine.evaluator.last_refresh_mode == "incremental"
        # The routed engine answers from the refreshed (current) snapshot.
        assert engine.evaluator._index.snapshot.epoch == graph.epoch

    def test_planner_prices_refresh_below_full_build(self):
        from repro.service.planner import QueryPlanner

        graph, _names, _edges, _rng = sparse_graph(12)
        snapshot = compile_graph(graph)
        planner = QueryPlanner()
        expression = PathExpression.parse("friend+[1,2]")
        backends = ("bfs", "cluster-index")
        common = dict(
            backends=backends, fresh={"bfs": True, "cluster-index": False},
            stability=4,
        )
        cold = planner.plan_reach(snapshot, expression, **common)
        warm = planner.plan_reach(snapshot, expression, refresh_ops=3, **common)
        cold_cluster = cold.estimate_for("cluster-index")
        warm_cluster = warm.estimate_for("cluster-index")
        assert warm_cluster.build_cost < cold_cluster.build_cost
        assert "refresh" in warm_cluster.note
