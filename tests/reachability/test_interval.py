"""Unit tests for the interval labeling and the Figure-5 reachability table."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.exceptions import ReachabilityError
from repro.reachability.interval import IntervalLabeling, ReachabilityTable, topological_order
from repro.reachability.linegraph import LineGraph


class TestTopologicalOrder:
    def test_chain(self):
        order = topological_order({"a": ["b"], "b": ["c"], "c": []})
        assert order == ["a", "b", "c"]

    def test_diamond_respects_dependencies(self):
        order = topological_order({"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []})
        assert order.index("a") < order.index("b") < order.index("d")
        assert order.index("a") < order.index("c") < order.index("d")

    def test_cycle_rejected(self):
        with pytest.raises(ReachabilityError):
            topological_order({"a": ["b"], "b": ["a"]})

    def test_deterministic(self):
        adjacency = {"z": [], "m": ["z"], "a": ["z"]}
        assert topological_order(adjacency) == topological_order(adjacency)

    def test_includes_sink_only_nodes(self):
        assert set(topological_order({"a": ["b"]})) == {"a", "b"}


class TestIntervalLabeling:
    def _check_against_networkx(self, adjacency):
        labeling = IntervalLabeling(adjacency)
        graph = nx.DiGraph()
        graph.add_nodes_from(labeling.nodes())
        for node, successors in adjacency.items():
            graph.add_edges_from((node, successor) for successor in successors)
        for source in graph.nodes:
            for target in graph.nodes:
                assert labeling.reaches(source, target) == nx.has_path(graph, source, target), (
                    source,
                    target,
                )

    def test_chain(self):
        self._check_against_networkx({"a": ["b"], "b": ["c"], "c": ["d"], "d": []})

    def test_tree(self):
        self._check_against_networkx({"r": ["a", "b"], "a": ["c", "d"], "b": ["e"],
                                      "c": [], "d": [], "e": []})

    def test_diamond_with_cross_edges(self):
        self._check_against_networkx(
            {"a": ["b", "c"], "b": ["d"], "c": ["d", "e"], "d": ["f"], "e": ["f"], "f": []}
        )

    def test_forest_with_multiple_roots(self):
        self._check_against_networkx({"a": ["c"], "b": ["c"], "c": [], "x": ["y"], "y": []})

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5])
    def test_random_dags(self, seed):
        graph = nx.gnp_random_graph(25, 0.12, seed=seed, directed=True)
        dag = nx.DiGraph((u, v) for u, v in graph.edges if u < v)
        dag.add_nodes_from(graph.nodes)
        adjacency = {node: list(dag.successors(node)) for node in dag.nodes}
        self._check_against_networkx(adjacency)

    def test_postorder_numbers_are_a_permutation(self):
        labeling = IntervalLabeling({"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []})
        numbers = sorted(labeling.postorder.values())
        assert numbers == list(range(1, 5))

    def test_every_node_interval_contains_its_own_postorder(self):
        labeling = IntervalLabeling({"a": ["b", "c"], "b": ["d"], "c": ["d"], "d": []})
        for node, intervals in labeling.intervals.items():
            number = labeling.postorder[node]
            assert any(low <= number <= high for low, high in intervals)

    def test_label_size_counts_intervals(self):
        labeling = IntervalLabeling({"a": ["b"], "b": []})
        assert labeling.label_size() == sum(len(v) for v in labeling.intervals.values())

    def test_cycle_rejected(self):
        with pytest.raises(ReachabilityError):
            IntervalLabeling({"a": ["b"], "b": ["a"]})


class TestReachabilityTable:
    @pytest.fixture
    def line_graph(self, figure1):
        return LineGraph(figure1, include_reverse=False)

    @pytest.fixture
    def table(self, line_graph):
        return ReachabilityTable(line_graph.adjacency())

    def test_one_row_per_line_vertex(self, table, line_graph):
        assert len(table.rows()) == line_graph.number_of_vertices() == 12

    def test_forward_reachability_matches_graph_walks(self, table, line_graph):
        graph = nx.DiGraph()
        graph.add_nodes_from(line_graph.vertex_ids())
        for vertex, successors in line_graph.adjacency().items():
            graph.add_edges_from((vertex, successor) for successor in successors)
        for source in graph.nodes:
            for target in graph.nodes:
                assert table.reaches(source, target) == (
                    source == target or nx.has_path(graph, source, target)
                ), (source, target)

    def test_backward_labeling_is_consistent_with_forward(self, table, line_graph):
        for source in line_graph.vertex_ids():
            for target in line_graph.vertex_ids():
                assert table.reaches(source, target) == table.reached_by(target, source)

    def test_worked_join_example_pairs_are_reachable(self, table):
        """Pairs listed in Section 3.3's worked joins must be reachable in L(G)."""
        assert table.reaches("friend:Alice->Colin", "colleague:David->Fred")
        assert table.reaches("friend:Alice->Colin", "parent:David->George")
        assert table.reaches("friend:Colin->David", "parent:David->George")
        assert table.reaches("friend:Alice->Colin", "parent:Colin->Fred")
        assert table.reaches("parent:Colin->Fred", "friend:Fred->George")

    def test_rows_have_both_labelings(self, table):
        for row in table.rows():
            assert row.postorder_down >= 1 and row.postorder_up >= 1
            assert row.intervals_down and row.intervals_up
            assert "\t" in row.format()

    def test_format_contains_header_and_all_nodes(self, table):
        text = table.format()
        assert text.splitlines()[0].startswith("node")
        assert len(text.splitlines()) == 13
        assert "friend:Alice->Colin" in text

    def test_label_size_positive(self, table):
        assert table.label_size() >= 24

    def test_handles_cyclic_input_via_condensation(self):
        table = ReachabilityTable({"a": ["b"], "b": ["a", "c"], "c": []})
        assert table.reaches("a", "c")
        assert table.reaches("b", "a")
        assert not table.reaches("c", "a")
