"""Unit tests for base tables, W-table and cluster join index (Figures 6 and 7)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.reachability.join_index import JoinIndex
from repro.reachability.linegraph import LineGraph


@pytest.fixture(scope="module")
def forward_index():
    from repro.datasets.paper_graph import paper_graph

    line_graph = LineGraph(paper_graph(), include_reverse=False)
    return JoinIndex(line_graph).build()


@pytest.fixture(scope="module")
def oriented_index():
    from repro.datasets.paper_graph import paper_graph

    line_graph = LineGraph(paper_graph(), include_reverse=True)
    return JoinIndex(line_graph).build()


class TestBaseTables:
    def test_one_table_per_label(self, forward_index):
        names = forward_index.catalog.table_names()
        assert names == ["T_colleague", "T_friend", "T_parent"]

    def test_base_table_rows_match_line_vertices(self, forward_index):
        assert len(forward_index.base_table(("friend", "+"))) == 8
        assert len(forward_index.base_table(("colleague", "+"))) == 2
        assert len(forward_index.base_table(("parent", "+"))) == 2

    def test_base_table_schema_is_three_columns(self, forward_index):
        table = forward_index.base_table(("friend", "+"))
        assert table.schema.column_names == ("node", "lin", "lout")

    def test_missing_base_table_returns_none(self, forward_index):
        assert forward_index.base_table(("follows", "+")) is None

    def test_reverse_tables_exist_in_oriented_index(self, oriented_index):
        assert oriented_index.base_table(("friend", "-")) is not None
        assert len(oriented_index.base_table(("friend", "-"))) == 8

    def test_labels_of_known_vertex(self, forward_index):
        lin, lout = forward_index.labels_of("friend:Alice->Colin")
        assert isinstance(lin, frozenset) and isinstance(lout, frozenset)


class TestRequiresBuild:
    def test_unbuilt_index_rejects_queries(self, figure1):
        index = JoinIndex(LineGraph(figure1, include_reverse=False))
        with pytest.raises(RuntimeError):
            index.reachability_join(("friend", "+"), ("colleague", "+"))


class TestReachabilityJoins:
    def test_friend_colleague_join_contains_the_paper_pair(self, forward_index):
        """Section 3.3: <friend A-C, colleague D-F> appears in T_friend ⋈ T_colleague."""
        pairs = forward_index.reachability_join(("friend", "+"), ("colleague", "+"))
        assert ("friend:Alice->Colin", "colleague:David->Fred") in pairs

    def test_friend_parent_join_matches_the_worked_example(self, forward_index):
        """Section 3.3 lists exactly three tuples for T_friend ⋈ T_parent."""
        pairs = forward_index.reachability_join(("friend", "+"), ("parent", "+"))
        expected = {
            ("friend:Alice->Colin", "parent:David->George"),
            ("friend:Colin->David", "parent:David->George"),
            ("friend:Alice->Colin", "parent:Colin->Fred"),
        }
        assert expected <= pairs

    def test_join_via_wtable_equals_baseline_join(self, forward_index):
        for first in forward_index.line_graph.keys():
            for second in forward_index.line_graph.keys():
                assert forward_index.reachability_join(first, second) == (
                    forward_index.reachability_join_baseline(first, second)
                ), (first, second)

    def test_join_pairs_are_truly_reachable_in_line_graph(self, forward_index):
        line_graph = forward_index.line_graph
        graph = nx.DiGraph()
        graph.add_nodes_from(line_graph.vertex_ids())
        for vertex, successors in line_graph.adjacency().items():
            graph.add_edges_from((vertex, successor) for successor in successors)
        for first in line_graph.keys():
            for second in line_graph.keys():
                for x, y in forward_index.reachability_join(first, second):
                    assert nx.has_path(graph, x, y), (x, y)

    def test_join_completeness_against_line_graph_walks(self, forward_index):
        """Every reachable (x, y) pair with the right labels must appear in the join."""
        line_graph = forward_index.line_graph
        graph = nx.DiGraph()
        graph.add_nodes_from(line_graph.vertex_ids())
        for vertex, successors in line_graph.adjacency().items():
            graph.add_edges_from((vertex, successor) for successor in successors)
        first, second = ("friend", "+"), ("colleague", "+")
        pairs = forward_index.reachability_join(first, second)
        for x in line_graph.with_key(*first):
            for y in line_graph.with_key(*second):
                if x.vertex_id != y.vertex_id and nx.has_path(graph, x.vertex_id, y.vertex_id):
                    assert (x.vertex_id, y.vertex_id) in pairs

    def test_vertex_reaches(self, forward_index):
        assert forward_index.vertex_reaches("friend:Alice->Colin", "friend:Fred->George")
        assert not forward_index.vertex_reaches("friend:Fred->George", "friend:Alice->Colin")
        assert forward_index.vertex_reaches("friend:Alice->Colin", "friend:Alice->Colin")


class TestWTable:
    def test_relevant_centers_subset_of_all_centers(self, forward_index):
        centers = set(forward_index.cluster_index.keys())
        for first in forward_index.line_graph.keys():
            for second in forward_index.line_graph.keys():
                assert forward_index.relevant_centers(first, second) <= centers

    def test_unjoinable_pair_has_no_centers(self, forward_index):
        # Nothing can follow a parent edge with a colleague edge... actually
        # parent:Colin->Fred is followed by colleague? Fred has no outgoing
        # colleague edge, and George neither, so (parent, colleague) is empty.
        assert forward_index.relevant_centers(("parent", "+"), ("colleague", "+")) == frozenset()
        assert forward_index.reachability_join(("parent", "+"), ("colleague", "+")) == set()

    def test_w_table_rows_are_printable(self, forward_index):
        rows = forward_index.w_table_rows()
        assert rows
        for first_label, second_label, centers in rows:
            assert isinstance(first_label, str) and isinstance(second_label, str)
            assert centers and all(isinstance(center, str) for center in centers)

    def test_lookup_of_unknown_pair_is_empty(self, forward_index):
        assert forward_index.relevant_centers(("follows", "+"), ("friend", "+")) == frozenset()


class TestClusterIndex:
    def test_clusters_stored_in_btree(self, forward_index):
        assert len(forward_index.cluster_index) > 0
        for center, entry in forward_index.cluster_index.items():
            assert entry.center == center
            assert entry.size() >= 0

    def test_cluster_lookup(self, forward_index):
        center = next(iter(forward_index.cluster_index.keys()))
        entry = forward_index.cluster(center)
        assert entry is not None
        assert entry.u_vertices() or entry.v_vertices()

    def test_cluster_entry_key_filtering(self, forward_index):
        center = next(iter(forward_index.cluster_index.keys()))
        entry = forward_index.cluster(center)
        all_u = entry.u_vertices()
        by_key = set()
        for key in forward_index.line_graph.keys():
            by_key |= entry.u_vertices(key)
        assert all_u == by_key

    def test_statistics(self, forward_index):
        stats = forward_index.statistics()
        assert stats["line_vertices"] == 12
        assert stats["base_table_rows"] == 12
        assert stats["centers"] == len(forward_index.cluster_index)
        assert stats["index_entries"] > 0
        assert stats["btree_leaf_nodes"] >= 1
