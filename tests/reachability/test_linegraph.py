"""Unit tests for the line-graph construction (Definition 4, Figure 3)."""

from __future__ import annotations

import pytest

from repro.graph.builder import GraphBuilder
from repro.reachability.linegraph import FORWARD, REVERSE, LineGraph


class TestForwardOnlyLineGraph:
    """The paper's construction: one line vertex per edge of G."""

    @pytest.fixture
    def line_graph(self, figure1):
        return LineGraph(figure1, include_reverse=False)

    def test_one_vertex_per_relationship(self, line_graph, figure1):
        assert line_graph.number_of_vertices() == figure1.number_of_relationships() == 12

    def test_vertices_carry_label_and_endpoints(self, line_graph):
        vertex = line_graph.vertex("friend:Alice->Colin")
        assert vertex.label == "friend"
        assert vertex.start == "Alice" and vertex.end == "Colin"
        assert vertex.direction == FORWARD
        assert vertex.describe() == "friend Alice-Colin"

    def test_adjacency_follows_shared_endpoint(self, line_graph):
        # friend Alice->Colin meets friend Colin->David and parent Colin->Fred.
        successors = line_graph.successors("friend:Alice->Colin")
        assert successors == {"friend:Colin->David", "parent:Colin->Fred"}

    def test_adjacency_is_directed(self, line_graph):
        assert not line_graph.are_adjacent("friend:Colin->David", "friend:Alice->Colin")
        assert line_graph.are_adjacent("friend:Alice->Colin", "friend:Colin->David")

    def test_two_cycle_produces_mutual_adjacency(self, line_graph):
        # Bill <-> Elena friendship: the two line vertices form a 2-cycle.
        assert line_graph.are_adjacent("friend:Bill->Elena", "friend:Elena->Bill")
        assert line_graph.are_adjacent("friend:Elena->Bill", "friend:Bill->Elena")

    def test_indexes_by_start_end_and_key(self, line_graph):
        starting = {vertex.vertex_id for vertex in line_graph.starting_at("Alice")}
        assert starting == {"friend:Alice->Colin", "friend:Alice->Bill", "colleague:Alice->David"}
        ending = {vertex.vertex_id for vertex in line_graph.ending_at("George")}
        assert ending == {"parent:David->George", "friend:Elena->George", "friend:Fred->George"}
        colleagues = {vertex.vertex_id for vertex in line_graph.with_key("colleague")}
        assert colleagues == {"colleague:Alice->David", "colleague:David->Fred"}

    def test_keys_enumerates_label_direction_pairs(self, line_graph):
        assert line_graph.keys() == [("colleague", "+"), ("friend", "+"), ("parent", "+")]

    def test_vertex_ids_sorted_and_len(self, line_graph):
        ids = line_graph.vertex_ids()
        assert ids == sorted(ids)
        assert len(line_graph) == 12

    def test_starting_at_with_key_filter(self, line_graph):
        vertices = line_graph.starting_at("Alice", key=("friend", "+"))
        assert {vertex.end for vertex in vertices} == {"Colin", "Bill"}


class TestOrientedLineGraph:
    """The extended construction used by the index pipeline (both traversal directions)."""

    @pytest.fixture
    def line_graph(self, figure1):
        return LineGraph(figure1, include_reverse=True)

    def test_two_vertices_per_relationship(self, line_graph, figure1):
        assert line_graph.number_of_vertices() == 2 * figure1.number_of_relationships()

    def test_reverse_vertex_swaps_endpoints(self, line_graph):
        vertex = line_graph.vertex("friend~:Alice->Colin")
        assert vertex.direction == REVERSE
        assert vertex.start == "Colin" and vertex.end == "Alice"
        assert "reverse" in vertex.describe()

    def test_reverse_vertices_indexed_by_key(self, line_graph):
        assert len(line_graph.with_key("friend", REVERSE)) == 8

    def test_adjacency_mixes_directions(self, line_graph):
        # Traverse Alice->Colin forward, then Colin<-? backwards: friend~:Alice->Colin
        # starts at Colin... the forward vertex ends at Colin, so any vertex starting
        # at Colin (including reverse ones) is adjacent.
        successors = line_graph.successors("friend:Alice->Colin")
        assert "friend~:Alice->Colin" in successors  # go back to Alice
        assert "parent:Colin->Fred" in successors

    def test_adjacency_mapping_is_a_copy(self, line_graph):
        adjacency = line_graph.adjacency()
        adjacency["friend:Alice->Colin"].clear()
        assert line_graph.successors("friend:Alice->Colin")


class TestEdgeCases:
    def test_empty_graph(self, empty_graph):
        line_graph = LineGraph(empty_graph)
        assert line_graph.number_of_vertices() == 0
        assert line_graph.number_of_edges() == 0

    def test_single_edge_graph(self):
        graph = GraphBuilder().relate("a", "b", "friend").build()
        line_graph = LineGraph(graph, include_reverse=False)
        assert line_graph.number_of_vertices() == 1
        assert line_graph.number_of_edges() == 0

    def test_self_loop_vertex_succeeds_itself(self):
        """A self-loop traversal ends where it starts, so it may repeat."""
        graph = GraphBuilder().relate("a", "a", "friend").relate("a", "b", "friend").build()
        line_graph = LineGraph(graph, include_reverse=False)
        assert line_graph.are_adjacent("friend:a->a", "friend:a->a")
        assert line_graph.are_adjacent("friend:a->a", "friend:a->b")
        assert not line_graph.are_adjacent("friend:a->b", "friend:a->b")

    def test_has_vertex(self, figure1):
        line_graph = LineGraph(figure1, include_reverse=False)
        assert line_graph.has_vertex("friend:Alice->Colin")
        assert not line_graph.has_vertex("friend:Colin->Alice")

    def test_repr(self, figure1):
        assert "forward-only" in repr(LineGraph(figure1, include_reverse=False))
        assert "oriented" in repr(LineGraph(figure1, include_reverse=True))
