"""Unit tests for reachability queries and line-query expansion (Fig. 4)."""

from __future__ import annotations

import pytest

from repro.exceptions import QueryError
from repro.policy.path_expression import PathExpression
from repro.policy.steps import Direction
from repro.reachability.query import LineHop, ReachabilityQuery, expand_line_queries


class TestReachabilityQuery:
    def test_parse(self):
        query = ReachabilityQuery.parse("Alice", "Fred", "friend+[1,2]/colleague+[1]")
        assert query.source == "Alice" and query.target == "Fred"
        assert query.expression.labels() == ("friend", "colleague")

    def test_describe(self):
        query = ReachabilityQuery.parse("Alice", "Fred", "friend")
        assert "Alice/friend+[1]" in query.describe()
        assert "Fred" in str(query)


class TestLineHop:
    def test_key_and_str(self):
        hop = LineHop("friend", Direction.INCOMING, step_index=0, closes_step=True)
        assert hop.key() == ("friend", "-")
        assert str(hop) == "friend-!"


class TestExpansion:
    def test_q1_expands_into_two_line_queries(self):
        expression = PathExpression.parse("friend+[1,2]/colleague+[1]")
        queries = expand_line_queries(expression)
        assert len(queries) == 2
        assert [query.label_sequence() for query in queries] == [
            ("friend", "colleague"),
            ("friend", "friend", "colleague"),
        ]

    def test_expansion_count_matches_interval_product(self):
        expression = PathExpression.parse("friend+[1,3]/colleague+[2,3]")
        queries = expand_line_queries(expression)
        assert len(queries) == expression.expansion_count() == 6

    def test_exact_depth_expands_to_single_query(self):
        queries = expand_line_queries(PathExpression.parse("friend[2]"))
        assert len(queries) == 1
        assert queries[0].label_sequence() == ("friend", "friend")
        assert queries[0].depths == (2,)

    def test_queries_sorted_by_length(self):
        expression = PathExpression.parse("friend+[1,3]")
        lengths = [len(query) for query in expand_line_queries(expression)]
        assert lengths == sorted(lengths) == [1, 2, 3]

    def test_step_index_and_closing_flags(self):
        expression = PathExpression.parse("friend+[2]/colleague+[1]")
        (query,) = expand_line_queries(expression)
        hops = list(query)
        assert [hop.step_index for hop in hops] == [0, 0, 1]
        assert [hop.closes_step for hop in hops] == [False, True, True]

    def test_directions_carried_to_hops(self):
        expression = PathExpression.parse("friend-[2]")
        (query,) = expand_line_queries(expression)
        assert all(hop.direction is Direction.INCOMING for hop in query)

    def test_depths_recorded_per_query(self):
        expression = PathExpression.parse("friend+[1,2]/colleague+[1,2]")
        depth_tuples = {query.depths for query in expand_line_queries(expression)}
        assert depth_tuples == {(1, 1), (1, 2), (2, 1), (2, 2)}

    def test_describe(self):
        (query,) = expand_line_queries(PathExpression.parse("friend-[1]/colleague+[1]"))
        assert query.describe() == "friend-/colleague+"

    def test_empty_expression_rejected(self):
        with pytest.raises(QueryError):
            expand_line_queries(PathExpression(()))

    def test_expansion_limit_guard(self):
        expression = PathExpression.parse("friend+[1,10]/colleague+[1,10]/parent+[1,10]")
        with pytest.raises(QueryError):
            expand_line_queries(expression, limit=100)
        assert len(expand_line_queries(expression, limit=None)) == 1000
