"""Unit tests for Tarjan SCC computation and DAG condensation."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.reachability.scc import condense, strongly_connected_components


class TestStronglyConnectedComponents:
    def test_dag_has_singleton_components(self):
        adjacency = {"a": ["b"], "b": ["c"], "c": []}
        components = strongly_connected_components(adjacency)
        assert sorted(len(component) for component in components) == [1, 1, 1]

    def test_simple_cycle(self):
        adjacency = {"a": ["b"], "b": ["c"], "c": ["a"]}
        components = strongly_connected_components(adjacency)
        assert len(components) == 1
        assert set(components[0]) == {"a", "b", "c"}

    def test_two_cycles_linked(self):
        adjacency = {
            "a": ["b"], "b": ["a", "c"],
            "c": ["d"], "d": ["c"],
        }
        components = strongly_connected_components(adjacency)
        component_sets = {frozenset(component) for component in components}
        assert component_sets == {frozenset({"a", "b"}), frozenset({"c", "d"})}

    def test_nodes_only_mentioned_as_successors_are_included(self):
        adjacency = {"a": ["b"]}
        components = strongly_connected_components(adjacency)
        assert {node for component in components for node in component} == {"a", "b"}

    def test_empty_graph(self):
        assert strongly_connected_components({}) == []

    def test_self_loop(self):
        adjacency = {"a": ["a"], "b": []}
        components = strongly_connected_components(adjacency)
        assert sorted(len(component) for component in components) == [1, 1]

    def test_deep_chain_does_not_hit_recursion_limit(self):
        n = 5000
        adjacency = {index: [index + 1] for index in range(n)}
        adjacency[n] = []
        components = strongly_connected_components(adjacency)
        assert len(components) == n + 1

    @pytest.mark.parametrize("seed", [0, 1, 2, 3])
    def test_matches_networkx_on_random_digraphs(self, seed):
        graph = nx.gnp_random_graph(40, 0.08, seed=seed, directed=True)
        adjacency = {node: list(graph.successors(node)) for node in graph.nodes}
        ours = {frozenset(component) for component in strongly_connected_components(adjacency)}
        reference = {frozenset(component) for component in nx.strongly_connected_components(graph)}
        assert ours == reference


class TestCondensation:
    def test_condensation_of_cycle_plus_tail(self):
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": []}
        condensation = condense(adjacency)
        assert condensation.number_of_components() == 2
        assert condensation.same_component("a", "b")
        assert not condensation.same_component("a", "c")

    def test_dag_edges_have_no_self_loops(self):
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": ["d"], "d": []}
        condensation = condense(adjacency)
        for component, successors in condensation.dag.items():
            assert component not in successors

    def test_dag_is_acyclic(self):
        adjacency = {
            "a": ["b"], "b": ["a", "c"], "c": ["d"], "d": ["c", "e"], "e": [],
        }
        condensation = condense(adjacency)
        dag = nx.DiGraph()
        dag.add_nodes_from(condensation.dag)
        for component, successors in condensation.dag.items():
            dag.add_edges_from((component, successor) for successor in successors)
        assert nx.is_directed_acyclic_graph(dag)

    def test_representatives_are_members_and_deterministic(self):
        adjacency = {"b": ["a"], "a": ["b"]}
        condensation = condense(adjacency)
        assert condensation.representative[0] == "a"  # smallest by string order
        assert condensation.representative[0] in condensation.components[0]

    def test_component_sizes_and_is_trivial(self):
        adjacency = {"a": ["b"], "b": ["a", "c"], "c": []}
        condensation = condense(adjacency)
        assert condensation.component_sizes() == [2, 1]
        assert not condensation.is_trivial()
        assert condense({"x": ["y"], "y": []}).is_trivial()

    def test_reachability_preserved_by_condensation(self):
        """The paper's claim: the transformation loses no reachability information."""
        graph = nx.gnp_random_graph(30, 0.1, seed=9, directed=True)
        adjacency = {node: list(graph.successors(node)) for node in graph.nodes}
        condensation = condense(adjacency)
        dag = nx.DiGraph()
        dag.add_nodes_from(condensation.dag)
        for component, successors in condensation.dag.items():
            dag.add_edges_from((component, successor) for successor in successors)
        for source in graph.nodes:
            for target in graph.nodes:
                original = nx.has_path(graph, source, target)
                source_component = condensation.component_of(source)
                target_component = condensation.component_of(target)
                condensed = source_component == target_component or nx.has_path(
                    dag, source_component, target_component
                )
                assert original == condensed, (source, target)
