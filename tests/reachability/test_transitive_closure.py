"""Unit tests for the transitive-closure index and evaluator."""

from __future__ import annotations

import pytest

from repro.exceptions import IndexNotBuiltError, NodeNotFoundError
from repro.graph.builder import GraphBuilder
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.transitive_closure import (
    TransitiveClosureEvaluator,
    TransitiveClosureIndex,
)
from repro.workloads.queries import random_query_mix


def expr(text):
    return PathExpression.parse(text)


class TestTransitiveClosureIndex:
    @pytest.fixture
    def index(self, figure1):
        return TransitiveClosureIndex(figure1).build()

    def test_requires_build(self, figure1):
        with pytest.raises(IndexNotBuiltError):
            TransitiveClosureIndex(figure1).reachable("Alice", "Fred")

    def test_plain_reachability(self, index):
        assert index.reachable("Alice", "George")
        assert index.reachable("Alice", "Fred")
        assert not index.reachable("George", "Alice")

    def test_self_reachability(self, index):
        assert index.reachable("Alice", "Alice")

    def test_per_label_closure(self, index):
        assert index.reachable_with_label("Alice", "David", "friend")
        assert not index.reachable_with_label("Alice", "Fred", "friend")
        assert index.reachable_with_label("Alice", "Fred", "colleague")

    def test_unknown_label_closure_is_empty(self, index):
        assert not index.reachable_with_label("Alice", "Fred", "follows")
        assert index.reachable_with_label("Alice", "Alice", "follows")  # trivially

    def test_undirected_closure(self, index):
        assert index.reachable_undirected("George", "Alice")

    def test_descendants(self, index):
        assert index.descendants("Alice") == {"Bill", "Colin", "David", "Elena", "Fred", "George"}
        assert index.descendants("Alice", "colleague") == {"David", "Fred"}

    def test_unknown_user_raises(self, index):
        with pytest.raises(NodeNotFoundError):
            index.reachable("Ghost", "Alice")

    def test_size_and_statistics(self, index, figure1):
        stats = index.statistics()
        assert stats["index_entries"] == index.size() > 0
        assert stats["labels"] == len(figure1.labels())
        assert stats["build_seconds"] >= 0

    def test_closure_matches_bfs_on_random_graph(self, small_random_graph):
        index = TransitiveClosureIndex(small_random_graph).build()
        bfs = OnlineBFSEvaluator(small_random_graph)
        users = sorted(small_random_graph.users())[:15]
        labels = small_random_graph.labels()
        big = max(2, small_random_graph.number_of_users() - 1)
        for source in users:
            for target in users:
                if source == target:
                    continue
                # Unconstrained reachability == a wide any-label query is awkward to
                # write; compare per-label closures against a single-label query.
                for label in labels:
                    expression = PathExpression.parse(f"{label}+[1,{big}]")
                    assert index.reachable_with_label(source, target, label) == bfs.evaluate(
                        source, target, expression, collect_witness=False
                    ).reachable, (source, target, label)


class TestTransitiveClosureEvaluator:
    @pytest.fixture
    def evaluator(self, figure1):
        return TransitiveClosureEvaluator(figure1).build()

    def test_requires_build(self, figure1):
        with pytest.raises(IndexNotBuiltError):
            TransitiveClosureEvaluator(figure1).evaluate("Alice", "Fred", expr("friend"))

    def test_same_results_as_bfs_on_figure1(self, figure1, evaluator):
        bfs = OnlineBFSEvaluator(figure1)
        expressions = [
            "friend+[1]", "friend+[1,2]/colleague+[1]", "friend-[1]",
            "friend*[1,2]", "parent+[1]/friend+[1]", "colleague+[1,2]",
        ]
        for text in expressions:
            expression = expr(text)
            for source in figure1.users():
                for target in figure1.users():
                    assert (
                        evaluator.evaluate(source, target, expression, collect_witness=False).reachable
                        == bfs.evaluate(source, target, expression, collect_witness=False).reachable
                    ), (text, source, target)

    def test_pruning_counter_on_unreachable_pair(self, evaluator):
        # George reaches nobody, so any forward query from George is pruned in O(1).
        result = evaluator.evaluate("George", "Alice", expr("friend+[1,6]"))
        assert not result.reachable
        assert result.counters.get("closure_pruned") == 1
        assert "states_visited" not in result.counters

    def test_non_pruned_query_delegates_to_search(self, evaluator):
        result = evaluator.evaluate("Alice", "Fred", expr("friend+[1,2]/colleague+[1]"))
        assert result.reachable
        assert result.counters.get("closure_checked") == 1
        assert result.witness is not None

    def test_find_targets(self, evaluator):
        assert evaluator.find_targets("Alice", expr("friend+[1]")) == {"Colin", "Bill"}

    def test_find_targets_requires_build(self, figure1):
        with pytest.raises(IndexNotBuiltError):
            TransitiveClosureEvaluator(figure1).find_targets("Alice", expr("friend"))

    def test_unknown_user_raises(self, evaluator):
        with pytest.raises(NodeNotFoundError):
            evaluator.evaluate("Ghost", "Alice", expr("friend"))

    def test_agreement_with_bfs_on_random_graph(self, small_random_graph):
        evaluator = TransitiveClosureEvaluator(small_random_graph).build()
        bfs = OnlineBFSEvaluator(small_random_graph)
        for source, target, expression in random_query_mix(small_random_graph, 50, seed=11):
            assert (
                evaluator.evaluate(source, target, expression, collect_witness=False).reachable
                == bfs.evaluate(source, target, expression, collect_witness=False).reachable
            ), (source, target, expression.to_text())

    def test_statistics_delegate_to_index(self, evaluator):
        assert evaluator.statistics()["index_entries"] > 0
