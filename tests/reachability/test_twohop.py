"""Unit tests for the 2-hop cover / labeling (Definitions 5 and 6)."""

from __future__ import annotations

import networkx as nx
import pytest

from repro.reachability.linegraph import LineGraph
from repro.reachability.twohop import TwoHopCover, TwoHopIndex


def _random_dag(n, p, seed):
    graph = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    dag = nx.DiGraph((u, v) for u, v in graph.edges if u < v)
    dag.add_nodes_from(graph.nodes)
    return {node: list(dag.successors(node)) for node in dag.nodes}


def _random_digraph(n, p, seed):
    graph = nx.gnp_random_graph(n, p, seed=seed, directed=True)
    return {node: list(graph.successors(node)) for node in graph.nodes}


class TestTwoHopCover:
    def test_chain(self):
        cover = TwoHopCover({"a": ["b"], "b": ["c"], "c": []})
        assert cover.reachable("a", "b")
        assert cover.reachable("a", "c")
        assert cover.reachable("b", "c")
        assert not cover.reachable("c", "a")
        assert not cover.reachable("b", "a")

    def test_self_reachability(self):
        cover = TwoHopCover({"a": ["b"], "b": []})
        assert cover.reachable("a", "a") and cover.reachable("b", "b")

    def test_disconnected_nodes(self):
        cover = TwoHopCover({"a": [], "b": []})
        assert not cover.reachable("a", "b")

    def test_labeling_contract_no_false_positives(self):
        """Every center in Lout(u) is reachable from u; every center in Lin(v) reaches v."""
        adjacency = _random_dag(30, 0.1, seed=3)
        cover = TwoHopCover(adjacency)
        graph = nx.DiGraph()
        graph.add_nodes_from(adjacency)
        for node, successors in adjacency.items():
            graph.add_edges_from((node, successor) for successor in successors)
        for node in adjacency:
            for center in cover.lout[node]:
                assert nx.has_path(graph, node, center)
            for center in cover.lin[node]:
                assert nx.has_path(graph, center, node)

    @pytest.mark.parametrize("seed", [1, 2, 3, 4, 5, 6])
    def test_matches_networkx_reachability_on_random_dags(self, seed):
        adjacency = _random_dag(28, 0.12, seed=seed)
        cover = TwoHopCover(adjacency)
        graph = nx.DiGraph()
        graph.add_nodes_from(adjacency)
        for node, successors in adjacency.items():
            graph.add_edges_from((node, successor) for successor in successors)
        for source in adjacency:
            for target in adjacency:
                assert cover.reachable(source, target) == nx.has_path(graph, source, target), (
                    source, target,
                )

    def test_labeling_size_and_centers(self):
        adjacency = _random_dag(25, 0.15, seed=7)
        cover = TwoHopCover(adjacency)
        assert cover.labeling_size() == sum(
            len(cover.lin[node]) + len(cover.lout[node]) for node in adjacency
        )
        assert cover.number_of_centers() == len(cover.centers) > 0
        assert cover.build_seconds >= 0

    def test_labeling_is_smaller_than_transitive_closure_on_chains(self):
        n = 60
        adjacency = {index: [index + 1] for index in range(n)}
        adjacency[n] = []
        cover = TwoHopCover(adjacency)
        closure_size = (n + 1) * n // 2
        assert cover.labeling_size() < closure_size

    def test_label_accessor(self):
        cover = TwoHopCover({"a": ["b"], "b": []})
        label = cover.label("a")
        assert label.size() == len(label.lin) + len(label.lout)


class TestTwoHopIndex:
    @pytest.mark.parametrize("seed", [1, 2, 3, 4])
    def test_matches_networkx_on_cyclic_digraphs(self, seed):
        adjacency = _random_digraph(25, 0.1, seed=seed)
        index = TwoHopIndex(adjacency)
        graph = nx.DiGraph()
        graph.add_nodes_from(adjacency)
        for node, successors in adjacency.items():
            graph.add_edges_from((node, successor) for successor in successors)
        for source in adjacency:
            for target in adjacency:
                assert index.reachable(source, target) == nx.has_path(graph, source, target), (
                    source, target,
                )

    def test_label_contract_at_vertex_level(self):
        """u ⇝ v (u != v)  iff  Lout(u) ∩ Lin(v) ≠ ∅ — including inside SCCs."""
        adjacency = _random_digraph(20, 0.15, seed=9)
        index = TwoHopIndex(adjacency)
        graph = nx.DiGraph()
        graph.add_nodes_from(adjacency)
        for node, successors in adjacency.items():
            graph.add_edges_from((node, successor) for successor in successors)
        for source in adjacency:
            for target in adjacency:
                if source == target:
                    continue
                expected = nx.has_path(graph, source, target)
                intersects = not index.label(source).lout.isdisjoint(index.label(target).lin)
                assert intersects == expected, (source, target)

    def test_centers_are_original_vertices(self, figure1):
        line_graph = LineGraph(figure1, include_reverse=False)
        index = TwoHopIndex(line_graph.adjacency())
        vertex_ids = set(line_graph.vertex_ids())
        assert set(index.centers()) <= vertex_ids

    def test_statistics(self, figure1):
        line_graph = LineGraph(figure1, include_reverse=True)
        index = TwoHopIndex(line_graph.adjacency())
        stats = index.statistics()
        assert stats["index_entries"] == index.labeling_size() > 0
        assert stats["components"] >= 1
        assert stats["build_seconds"] >= 0
