"""CircuitBreaker state machine and planner-level degradation."""

import pytest

from repro.graph.social_graph import SocialGraph
from repro.reliability.breaker import CircuitBreaker
from repro.service.facade import GraphService


class FakeClock:
    def __init__(self):
        self.now = 0.0

    def __call__(self):
        return self.now


# ----------------------------------------------------------------------- unit


def test_constructor_validation():
    with pytest.raises(ValueError):
        CircuitBreaker(failure_threshold=0)
    with pytest.raises(ValueError):
        CircuitBreaker(cooldown_seconds=-1.0)


def test_trips_after_consecutive_failures():
    breaker = CircuitBreaker(failure_threshold=3, clock=FakeClock())
    breaker.record_failure()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED
    assert not breaker.blocking
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.blocking
    assert breaker.trip_count == 1


def test_success_resets_the_failure_streak():
    breaker = CircuitBreaker(failure_threshold=2, clock=FakeClock())
    breaker.record_failure()
    breaker.record_success()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.CLOSED


def test_half_open_after_cooldown_and_single_probe_slot():
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_seconds=30.0, clock=clock
    )
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    clock.now = 31.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    assert not breaker.blocking  # the probe slot is free
    assert breaker.allow_probe()
    assert breaker.blocking  # ...and now it is taken
    assert not breaker.allow_probe()


def test_probe_success_closes():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=1.0, clock=clock)
    breaker.record_failure()
    clock.now = 2.0
    assert breaker.allow_probe()
    breaker.record_success()
    assert breaker.state == CircuitBreaker.CLOSED
    assert not breaker.blocking


def test_probe_failure_reopens_and_restarts_cooldown():
    clock = FakeClock()
    breaker = CircuitBreaker(failure_threshold=1, cooldown_seconds=10.0, clock=clock)
    breaker.record_failure()
    clock.now = 11.0
    assert breaker.allow_probe()
    breaker.record_failure()
    assert breaker.state == CircuitBreaker.OPEN
    assert breaker.trip_count == 2
    clock.now = 20.0  # cooldown restarted at t=11: still open
    assert breaker.state == CircuitBreaker.OPEN
    clock.now = 21.5
    assert breaker.state == CircuitBreaker.HALF_OPEN


def test_slow_success_counts_as_failure():
    breaker = CircuitBreaker(
        failure_threshold=1, slow_threshold_seconds=0.5, clock=FakeClock()
    )
    breaker.record_success(duration=0.4)
    assert breaker.state == CircuitBreaker.CLOSED
    breaker.record_success(duration=0.6)
    assert breaker.state == CircuitBreaker.OPEN
    assert "slow build" in breaker.last_failure


# -------------------------------------------------------------------- service


def broken_chain_graph(n=30):
    """u0 cannot reach u{n-1}: a denial-heavy stream that favours the closure."""
    graph = SocialGraph("breaker")
    for i in range(n):
        graph.add_user(f"u{i}")
    for i in range(n - 1):
        if i != n // 2:
            graph.add_relationship(f"u{i}", f"u{i + 1}", "friend")
    return graph


def warm_until_tc_chosen(service, text, limit=300):
    """Drive a denial-heavy stream until the closure auto-wins (or fail)."""
    service._reach_outcomes[text] = [100, 1.0]
    for _ in range(limit):
        result = service.reach("u0", "u29", text)
        if result.plan.backend == "transitive-closure":
            return result
    raise AssertionError("transitive-closure never auto-selected")


def break_index_maintenance(service, backend="transitive-closure"):
    evaluator = service._engines[backend].evaluator

    def boom(*args, **kwargs):
        raise RuntimeError("synthetic maintenance failure")

    evaluator.build = boom
    if hasattr(evaluator, "refresh"):
        evaluator.refresh = boom


def test_default_service_has_breakers_for_index_backends():
    service = GraphService(broken_chain_graph())
    assert set(service.breakers) == {"transitive-closure", "cluster-index"}
    service_without = GraphService(broken_chain_graph(), breakers={})
    assert service_without.breakers == {}


def test_tripped_breaker_reroutes_auto_queries_to_a_walk():
    """The acceptance scenario: identical answers via the walking fallback."""
    text = "friend+[1,29]"
    graph = broken_chain_graph()
    service = GraphService(graph)
    baseline = warm_until_tc_chosen(service, text)

    break_index_maintenance(service)
    graph.add_user("mutation")  # stale index: next TC routing must rebuild
    service._reach_outcomes[text] = [100, 1.0]
    breaker = service.breakers["transitive-closure"]

    rerouted = []
    for _ in range(300):
        result = service.reach("u0", "u29", text)
        assert result.reachable == baseline.reachable  # differential check
        if "rerouted" in result.plan.reason:
            rerouted.append(result)
            assert result.plan.backend in ("bfs", "dfs")
        if breaker.state == CircuitBreaker.OPEN:
            break
    assert rerouted, "maintenance failure never caused a reroute"
    assert breaker.state == CircuitBreaker.OPEN
    assert service.queries_rerouted == len(rerouted)

    # Open breaker: the planner now prices the backend out up front (the
    # estimate row survives, marked unavailable) — no more reroutes needed.
    result = service.reach("u0", "u29", text)
    assert result.plan.backend != "transitive-closure"
    assert "rerouted" not in result.plan.reason
    estimate = result.plan.estimate_for("transitive-closure")
    assert estimate is not None
    assert not estimate.available
    assert estimate.note == "circuit breaker open"

    stats = service.statistics()
    assert stats["breaker_transitive_closure_state"] == 1.0
    assert stats["breaker_transitive_closure_trips"] == 1.0
    assert stats["queries_rerouted"] == float(len(rerouted))


def test_half_open_probe_restores_the_backend():
    text = "friend+[1,29]"
    graph = broken_chain_graph()
    clock = FakeClock()
    breaker = CircuitBreaker(
        failure_threshold=1, cooldown_seconds=30.0, clock=clock
    )
    service = GraphService(graph, breakers={"transitive-closure": breaker})
    warm_until_tc_chosen(service, text)

    evaluator = service._engines["transitive-closure"].evaluator
    original_refresh = getattr(evaluator, "refresh", None)
    original_build = evaluator.build
    break_index_maintenance(service)
    graph.add_user("mutation")
    service._reach_outcomes[text] = [100, 1.0]
    for _ in range(300):
        service.reach("u0", "u29", text)
        if breaker.state == CircuitBreaker.OPEN:
            break
    assert breaker.state == CircuitBreaker.OPEN

    # Maintenance is fixed; the cooldown elapses; the next query that plans
    # to the closure is the probe, and its successful build closes the
    # breaker for everyone.
    evaluator.build = original_build
    if original_refresh is not None:
        evaluator.refresh = original_refresh
    elif hasattr(evaluator, "refresh"):
        del evaluator.refresh
    clock.now = 31.0
    assert breaker.state == CircuitBreaker.HALF_OPEN
    restored = None
    for _ in range(300):
        result = service.reach("u0", "u29", text)
        if result.plan.backend == "transitive-closure":
            restored = result
            break
    assert restored is not None, "backend never restored after cooldown"
    assert breaker.state == CircuitBreaker.CLOSED
    assert "rerouted" not in restored.plan.reason


def test_pinned_queries_bypass_the_veto_and_surface_the_error():
    text = "friend+[1,29]"
    graph = broken_chain_graph()
    service = GraphService(graph)
    warm_until_tc_chosen(service, text)
    break_index_maintenance(service)
    graph.add_user("mutation")
    with pytest.raises(RuntimeError, match="synthetic maintenance failure"):
        service.reach("u0", "u29", text, backend="transitive-closure")
