"""The crash-consistency matrix: every injection point × applicable fault.

Each parametrized case re-runs ``checkpoint()`` with exactly one armed
fault, then recovers as a fresh process would and asserts the store landed
on exactly the pre- or post-checkpoint state (standalone) and exactly the
post state (live warm start).  ``test_full_matrix`` is the exhaustive run
CI also executes via ``python -m repro.reliability``.
"""

import pytest

from repro.reliability.crashsim import SCENARIOS, CrashConsistencySimulator
from repro.reliability.faults import FAULT_KINDS


@pytest.mark.parametrize("kind", FAULT_KINDS)
@pytest.mark.parametrize("scenario", SCENARIOS)
def test_crash_matrix_cell(tmp_path, scenario, kind):
    simulator = CrashConsistencySimulator(
        tmp_path, seed=0, scenarios=[scenario], kinds=[kind]
    )
    report = simulator.run()
    failures = [
        f"{o.scenario}/{o.point}#{o.occurrence} x {o.kind}: {'; '.join(o.notes)}"
        for o in report.failures()
    ]
    assert report.passed, failures


def test_full_matrix(tmp_path):
    report = CrashConsistencySimulator(tmp_path, seed=0).run()
    assert report.passed, report.failures()

    # Coverage: every scenario contributed, every kind fired somewhere, and
    # the three checkpoint shapes exposed their distinctive points.
    points = set(report.points_covered())
    assert {"base.write", "base.fsync", "base.replace", "base.replaced"} <= points
    assert {"delta.write", "delta.fsync", "delta.replace", "delta.replaced"} <= points
    assert "delta.unlink" in points  # rebase epilogue
    assert {outcome.kind for outcome in report.outcomes} == set(FAULT_KINDS)
    assert {outcome.scenario for outcome in report.outcomes} == set(SCENARIOS)

    # Silent *on-disk* corruption (a flipped bit that reached the file) must
    # end with the bad file quarantined, and the quarantined names must be
    # surfaced by the recovery report.  (A read-stage flip corrupts only the
    # in-memory buffer: the checkpoint reacts, the disk stays clean.)
    flip_cases = [
        outcome
        for outcome in report.outcomes
        if outcome.kind == "bit_flip"
        and outcome.point.endswith(".write")
        and outcome.died is None
    ]
    assert flip_cases, "no completed bit-flip case in the matrix"
    for outcome in flip_cases:
        assert outcome.quarantined, (outcome.point, outcome.notes)
        assert all(".quarantine." in name for name in outcome.quarantined)

    # Crash cases that died before the replace strand a tmp file; recovery
    # must reap it (never serve it, never trip over it).
    stranded = [
        outcome
        for outcome in report.outcomes
        if outcome.kind == "crash" and outcome.point.endswith(".replace")
    ]
    assert stranded
    for outcome in stranded:
        assert outcome.reaped_tmp, outcome.point


def test_matrix_is_deterministic(tmp_path):
    first = CrashConsistencySimulator(
        tmp_path / "a", seed=1, scenarios=["delta"]
    ).run()
    second = CrashConsistencySimulator(
        tmp_path / "b", seed=1, scenarios=["delta"]
    ).run()
    digest = lambda report: [  # noqa: E731
        (o.point, o.occurrence, o.kind, o.died, o.standalone_state, o.recovery_source)
        for o in report.outcomes
    ]
    assert digest(first) == digest(second)


def test_report_is_json_friendly(tmp_path):
    import json

    report = CrashConsistencySimulator(
        tmp_path, seed=0, scenarios=["base"], kinds=["crash"]
    ).run()
    encoded = json.dumps(report.to_dict())
    assert '"passed": true' in encoded
