"""FaultInjector unit behaviour and its interaction with the store seam."""

import pytest

from repro.exceptions import SnapshotFormatError
from repro.graph.compiled import compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.reliability.faults import (
    FAULT_KINDS,
    KINDS_BY_STAGE,
    FaultInjector,
    SimulatedCrash,
)


def small_graph(n=8):
    graph = SocialGraph("faults")
    for i in range(n):
        graph.add_user(f"u{i}")
    for i in range(n):
        graph.add_relationship(f"u{i}", f"u{(i + 1) % n}", "friend")
    return graph


def store_at(tmp_path, injector=None, **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    return SnapshotStore(tmp_path / "g.snap", io_hooks=injector, **kwargs)


# --------------------------------------------------------------------- arming


def test_arm_rejects_unknown_point_and_invalid_kind():
    injector = FaultInjector()
    with pytest.raises(ValueError):
        injector.arm("base.explode", "crash")
    with pytest.raises(ValueError):
        injector.arm("base.fsync", "torn_write")  # torn_write is write-only


def test_kinds_by_stage_covers_every_kind():
    assert set(FAULT_KINDS) == {
        kind for kinds in KINDS_BY_STAGE.values() for kind in kinds
    }


def test_trace_records_every_point_visited(tmp_path):
    injector = FaultInjector()
    store = store_at(tmp_path, injector)
    store.checkpoint(small_graph())
    assert "base.write" in injector.trace
    assert "base.fsync" in injector.trace
    assert "base.replace" in injector.trace
    assert "base.replaced" in injector.trace


def test_skip_counts_occurrences(tmp_path):
    # fsync fires once per written file; skip=1 must leave the first alone.
    injector = FaultInjector().arm("base.fsync", "crash", skip=1)
    store = store_at(tmp_path, injector)
    store.checkpoint(small_graph())  # first base write survives
    assert injector.pending() == 1
    graph = small_graph()
    graph.add_user("extra")
    with pytest.raises(SimulatedCrash):
        store.save(compile_graph(graph))
    assert injector.pending() == 0


def test_seeded_determinism():
    a = FaultInjector(seed=7)
    b = FaultInjector(seed=7)
    payload = bytes(range(256))
    flipped_a, pos_a = a._flip_bit(payload, None)
    flipped_b, pos_b = b._flip_bit(payload, None)
    assert pos_a == pos_b
    assert flipped_a == flipped_b
    assert flipped_a != payload


# ------------------------------------------------------------------ behaviour


def test_crash_strands_tmp_file(tmp_path):
    """SimulatedCrash must bypass the except-Exception tmp cleanup."""
    injector = FaultInjector().arm("base.replace", "crash")
    store = store_at(tmp_path, injector)
    with pytest.raises(SimulatedCrash):
        store.checkpoint(small_graph())
    tmps = list(tmp_path.glob("*.tmp"))
    assert len(tmps) == 1  # the dead writer left its tmp behind


def test_torn_write_persists_truncated_tmp(tmp_path):
    injector = FaultInjector().arm("base.write", "torn_write", offset=10)
    store = store_at(tmp_path, injector)
    with pytest.raises(SimulatedCrash):
        store.checkpoint(small_graph())
    (tmp,) = list(tmp_path.glob("*.tmp"))
    assert tmp.stat().st_size == 10
    assert not (tmp_path / "g.snap").exists()  # replace never ran


def test_enospc_is_a_plain_oserror_and_retry_recovers(tmp_path):
    """Transient ENOSPC: the checkpoint retry loop absorbs one failure."""
    naps = []
    injector = FaultInjector().arm("base.write", "enospc")
    store = SnapshotStore(
        tmp_path / "g.snap", io_hooks=injector, sleep=naps.append
    )
    assert store.checkpoint(small_graph()) == "base"
    assert store.checkpoint_retries_used == 1
    assert naps == [store.retry_backoff_seconds]
    assert not list(tmp_path.glob("*.tmp"))  # failed attempt cleaned up


def test_persistent_enospc_exhausts_retries(tmp_path):
    injector = FaultInjector().arm("base.write", "enospc", count=10)
    store = store_at(tmp_path, injector, checkpoint_retries=2)
    with pytest.raises(OSError):
        store.checkpoint(small_graph())
    assert store.checkpoint_retries_used == 2


def test_retry_backoff_is_exponential(tmp_path):
    naps = []
    injector = FaultInjector().arm("base.fsync", "fsync_fail", count=2)
    store = SnapshotStore(
        tmp_path / "g.snap",
        io_hooks=injector,
        checkpoint_retries=2,
        retry_backoff_seconds=0.5,
        sleep=naps.append,
    )
    assert store.checkpoint(small_graph()) == "base"
    assert naps == [0.5, 1.0]


def test_bit_flip_on_write_is_caught_by_verify(tmp_path):
    injector = FaultInjector(seed=3).arm("base.write", "bit_flip", offset=200)
    store = store_at(tmp_path, injector)
    store.checkpoint(small_graph())  # completes: silent corruption
    clean = store_at(tmp_path)
    with pytest.raises((SnapshotFormatError, OSError)):
        clean.load(verify=True)


def test_bit_flip_on_delta_write_is_caught(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst")
    injector = FaultInjector(seed=5).arm("delta.write", "bit_flip")
    faulty = store_at(tmp_path, injector)
    assert faulty.checkpoint(graph) == "delta"
    clean = store_at(tmp_path)
    with pytest.raises(SnapshotFormatError):
        clean.load(verify=True)


def test_partial_read_is_caught(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst")
    store.checkpoint(graph)
    injector = FaultInjector().arm("delta.read", "partial_read", offset=5)
    faulty = store_at(tmp_path, injector)
    with pytest.raises(SnapshotFormatError):
        faulty.load(verify=True)


def test_events_record_what_fired(tmp_path):
    injector = FaultInjector().arm("base.write", "enospc")
    store = store_at(tmp_path, injector)
    store.checkpoint(small_graph())
    assert [(event.point, event.kind) for event in injector.events] == [
        ("base.write", "enospc")
    ]
