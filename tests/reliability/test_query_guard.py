"""QueryGuard unit semantics and its service-level degradation behaviour."""

import pytest

from repro.exceptions import QueryBudgetExceeded
from repro.graph.social_graph import SocialGraph
from repro.reliability.guard import QueryGuard, active_guard
from repro.service.facade import GraphService


def ring_graph(n=40):
    graph = SocialGraph("guarded")
    for i in range(n):
        graph.add_user(f"u{i}")
    for i in range(n):
        graph.add_relationship(f"u{i}", f"u{(i + 1) % n}", "friend")
    return graph


# ----------------------------------------------------------------------- unit


def test_constructor_validation():
    with pytest.raises(ValueError):
        QueryGuard(max_steps=0)
    with pytest.raises(ValueError):
        QueryGuard(max_seconds=-1.0)
    with pytest.raises(ValueError):
        QueryGuard().scope("explode").__enter__()


def test_no_guard_active_by_default():
    assert active_guard() is None


def test_scope_installs_and_restores():
    guard = QueryGuard(max_steps=10)
    with guard.scope():
        assert active_guard() is guard
    assert active_guard() is None


def test_scopes_nest():
    outer, inner = QueryGuard(max_steps=10), QueryGuard(max_steps=5)
    with outer.scope():
        with inner.scope():
            assert active_guard() is inner
        assert active_guard() is outer


def test_step_budget_raises_in_raise_mode():
    guard = QueryGuard(max_steps=3)
    with guard.scope(QueryGuard.RAISE):
        assert guard.spend(3)
        with pytest.raises(QueryBudgetExceeded) as info:
            guard.spend(1)
    assert info.value.limit == "steps"
    assert info.value.budget == 3
    assert guard.tripped
    assert guard.trip_reason == "steps"


def test_step_budget_returns_false_in_partial_mode():
    guard = QueryGuard(max_steps=3)
    with guard.scope(QueryGuard.PARTIAL):
        assert guard.spend(2)
        assert not guard.spend(2)
        # Fast-fail from here on: no further accounting, just "stop".
        assert not guard.spend(1)
    assert guard.tripped


def test_deadline_checked_every_interval():
    clock = [0.0]
    guard = QueryGuard(
        max_seconds=1.0, check_interval=10, clock=lambda: clock[0]
    )
    with guard.scope(QueryGuard.PARTIAL):
        clock[0] = 5.0  # already past the deadline...
        assert guard.spend(9)  # ...but the interval has not elapsed
        assert not guard.spend(1)  # 10th step: clock consulted, tripped
    assert guard.trip_reason == "deadline"


def test_scope_resets_per_query_state_but_not_trip_count():
    guard = QueryGuard(max_steps=1)
    for _ in range(3):
        with guard.scope(QueryGuard.PARTIAL):
            guard.spend(5)
        assert guard.tripped
    with guard.scope(QueryGuard.PARTIAL):
        assert not guard.tripped
        assert guard.steps_spent == 0
    assert guard.trip_count == 3


# -------------------------------------------------------------------- service


def test_reach_raises_on_blown_budget():
    service = GraphService(ring_graph(), query_guard=QueryGuard(max_steps=3))
    with pytest.raises(QueryBudgetExceeded):
        service.reach("u0", "u30", "friend+[1,39]")
    assert service.statistics()["guard_trips"] == 1.0


def test_access_raises_on_blown_budget():
    from repro.policy.store import PolicyStore

    graph = ring_graph()
    store = PolicyStore()
    store.share("u0", "album", kind="photos")
    store.allow("album", "friend+[1,39]")
    service = GraphService(
        graph, store, query_guard=QueryGuard(max_steps=3)
    )
    with pytest.raises(QueryBudgetExceeded):
        service.check("u30", "album")


def test_generous_budget_never_trips():
    service = GraphService(
        ring_graph(), query_guard=QueryGuard(max_steps=1_000_000)
    )
    result = service.reach("u0", "u30", "friend+[1,39]")
    assert result.reachable
    assert service.statistics()["guard_trips"] == 0.0


def test_audience_degrades_to_partial():
    graph = ring_graph()
    service = GraphService(graph, query_guard=QueryGuard(max_steps=5))
    owners = [f"u{i}" for i in range(4)]
    result = service.audience(owners, "friend+[1,39]")
    assert result.partial
    assert service.queries_degraded == 1
    assert set(result.audiences) == set(owners)  # every owner present...
    full = GraphService(graph).audience(owners, "friend+[1,39]")
    assert not full.partial
    for owner in owners:  # ...each truncated audience under-approximates
        assert result.audiences[owner] <= full.audiences[owner]


def test_bulk_access_degrades_to_partial():
    from repro.policy.store import PolicyStore

    graph = ring_graph()
    store = PolicyStore()
    store.share("u0", "album", kind="photos")
    store.allow("album", "friend+[1,39]")
    service = GraphService(graph, store, query_guard=QueryGuard(max_steps=5))
    result = service.bulk_access(["album"])
    assert result.partial
    assert service.queries_degraded == 1


def test_partial_results_never_poison_the_memo():
    """Raising the budget after a partial answer must yield the full one."""
    graph = ring_graph()
    guard = QueryGuard(max_steps=5)
    service = GraphService(graph, query_guard=guard)
    partial = service.audience(["u0"], "friend+[1,39]")
    assert partial.partial
    guard.max_steps = None  # operator raises the budget at runtime
    full = service.audience(["u0"], "friend+[1,39]")
    assert not full.partial
    assert len(full.audiences["u0"]) == 39
    assert partial.audiences["u0"] < full.audiences["u0"]
