"""Guard-tripped sharded sweeps: partial provenance, unpoisoned memos.

Closes the test gap called out for the sharding layer: when a
:class:`~repro.reliability.QueryGuard` budget runs out *mid-fanout* — some
shards drained, others still holding worklist — the degraded answer must

* report ``partial=True`` exactly like the single-process sweeps,
* carry per-shard provenance on the executed plan
  (:attr:`~repro.sharding.ShardSweepPlan.partial_shards` names the shards
  whose sweeps were cut short), and
* never enter any memo: re-running the same query at the same graph epoch
  with the budget lifted must produce the complete answer.
"""

from __future__ import annotations

import pytest

from repro.graph.social_graph import SocialGraph
from repro.policy.path_expression import PathExpression
from repro.reachability.bfs import OnlineBFSEvaluator
from repro.reachability.engine import ReachabilityEngine
from repro.reliability import QueryGuard
from repro.service import GraphService
from repro.sharding import ShardRouter, ShardSweepPlan, ShardedGraph

RING = 40
EXPR = f"friend+[1,{RING - 1}]"


def ring_graph() -> SocialGraph:
    graph = SocialGraph(name="guarded-ring")
    for i in range(RING):
        graph.add_user(f"u{i}")
    for i in range(RING):
        graph.add_relationship(f"u{i}", f"u{(i + 1) % RING}", "friend")
    return graph


def test_tripped_fanout_reports_partial_shards():
    graph = ring_graph()
    router = ShardRouter(ShardedGraph(graph, shards=4, seed=11))
    expression = PathExpression.parse(EXPR)
    guard = QueryGuard(max_steps=5)
    with guard.scope(QueryGuard.PARTIAL):
        audiences, plan = router.sweep_targets_many(["u0"], expression)
    assert guard.tripped
    assert isinstance(plan, ShardSweepPlan)
    assert plan.partial_shards != ()
    assert all(0 <= shard < 4 for shard in plan.partial_shards)
    full = OnlineBFSEvaluator(graph).find_targets("u0", expression)
    assert audiences["u0"] < full  # a strict under-approximation
    # The same router, unguarded, completes — no partial state lingers.
    complete, plan = router.sweep_targets_many(["u0"], expression)
    assert plan.partial_shards == ()
    assert complete["u0"] == full


def test_partial_sharded_sweeps_never_enter_the_engine_memo():
    graph = ring_graph()
    router = ShardRouter(ShardedGraph(graph, shards=4, seed=11))
    engine = ReachabilityEngine(graph, router, cache_size=128)
    guard = QueryGuard(max_steps=5)
    with guard.scope(QueryGuard.PARTIAL):
        truncated, _plan = engine.sweep_targets_many(["u0"], EXPR)
    # Same epoch, budget lifted: a poisoned memo would replay the stub.
    complete, _plan = engine.sweep_targets_many(["u0"], EXPR)
    assert len(complete["u0"]) == RING - 1
    assert truncated["u0"] < complete["u0"]


def test_service_partial_carries_shard_provenance():
    guard = QueryGuard(max_steps=5)
    service = GraphService(ring_graph(), shards=4, query_guard=guard)
    result = service.audience(["u0"], EXPR, backend="sharded")
    assert result.partial
    assert service.queries_degraded == 1
    assert result.plan.backend == "sharded"
    assert isinstance(result.sweep_plan, ShardSweepPlan)
    assert result.sweep_plan.partial_shards != ()
    guard.max_steps = None  # operator lifts the budget at runtime
    full = service.audience(["u0"], EXPR, backend="sharded")
    assert not full.partial
    assert full.sweep_plan.partial_shards == ()
    assert len(full.audiences["u0"]) == RING - 1
    assert result.audiences["u0"] < full.audiences["u0"]


def test_service_bulk_access_partial_over_shards():
    from repro.policy.store import PolicyStore

    graph = ring_graph()
    store = PolicyStore()
    store.share("u0", "album", kind="photos")
    store.allow("album", EXPR)
    guard = QueryGuard(max_steps=5)
    service = GraphService(graph, store, shards=4, query_guard=guard)
    result = service.bulk_access(["album"], backend="sharded")
    assert result.partial
    plans = [
        plan
        for plan in result.sweep_plans.values()
        if isinstance(plan, ShardSweepPlan)
    ]
    assert plans and any(plan.partial_shards != () for plan in plans)
    guard.max_steps = None
    full = service.bulk_access(["album"], backend="sharded")
    assert not full.partial
    assert result["album"] <= full["album"]


def test_reach_raises_in_default_mode_over_shards():
    service = GraphService(
        ring_graph(), shards=4, query_guard=QueryGuard(max_steps=3)
    )
    from repro.exceptions import QueryBudgetExceeded

    with pytest.raises(QueryBudgetExceeded):
        service.reach("u0", "u30", EXPR, collect_witness=False, backend="sharded")
    assert service.statistics()["guard_trips"] == 1.0
