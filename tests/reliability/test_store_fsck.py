"""Self-healing store: fsck, quarantine, tmp hygiene, healed warm starts."""

import os
import time

import pytest

from repro.graph.compiled import compile_graph
from repro.graph.snapshot import SnapshotStore
from repro.graph.social_graph import SocialGraph
from repro.service.facade import GraphService


def small_graph(n=10):
    graph = SocialGraph("fsck")
    for i in range(n):
        graph.add_user(f"u{i}")
    for i in range(n):
        graph.add_relationship(f"u{i}", f"u{(i + 1) % n}", "friend")
    return graph


def store_at(tmp_path, **kwargs):
    kwargs.setdefault("sleep", lambda seconds: None)
    return SnapshotStore(tmp_path / "g.snap", **kwargs)


def age(path, seconds=3600):
    stamp = time.time() - seconds
    os.utime(path, (stamp, stamp))


# ------------------------------------------------------------------- tmp reap


def test_open_reaps_stale_tmp_files(tmp_path):
    stale = tmp_path / "g.snap.tmp"
    stale.write_bytes(b"half a checkpoint")
    age(stale)
    store = store_at(tmp_path)
    assert not stale.exists()
    assert store.tmp_files_reaped == 1


def test_open_keeps_fresh_tmp_files(tmp_path):
    """A fresh tmp may belong to a live writer in another process."""
    fresh = tmp_path / "g.delta.0.tmp"
    fresh.write_bytes(b"in flight")
    store = store_at(tmp_path)
    assert fresh.exists()
    # fsck runs on a store known broken: it reaps regardless of age.
    report = store.fsck()
    assert not fresh.exists()
    assert "g.delta.0.tmp" in report.reaped_tmp


def test_failed_write_cleans_its_own_tmp(tmp_path):
    """An ordinary (non-crash) failure must not orphan the tmp file."""

    class Boom(OSError):
        pass

    store = store_at(tmp_path, checkpoint_retries=0)
    original = store.io_hooks

    class FailingHooks(type(original)):
        def before_replace(self, tmp, final):
            raise Boom("no replace today")

    store.io_hooks = FailingHooks()
    with pytest.raises(Boom):
        store.checkpoint(small_graph())
    assert not list(tmp_path.glob("*.tmp"))


# ----------------------------------------------------------------- quarantine


def test_fsck_on_clean_store_is_healthy(tmp_path):
    store = store_at(tmp_path)
    store.checkpoint(small_graph())
    report = store.fsck()
    assert report.healthy
    assert report.quarantined == ()
    assert not report.base_quarantined
    assert store.last_recovery is report


def test_fsck_quarantines_corrupt_segment_and_serves_prefix(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    pre_epoch = graph.epoch
    graph.add_user("burst-1")
    store.checkpoint(graph)
    graph.add_user("burst-2")
    store.checkpoint(graph)
    # Corrupt the *first* segment: both must go (the chain is contiguous).
    (tmp_path / "g.delta.0").write_bytes(b"{ not json")
    report = store.fsck()
    assert report.healthy
    assert not report.base_quarantined
    assert "g.delta.0.quarantine.0" in report.quarantined
    assert "g.delta.1.quarantine.0" in report.quarantined
    assert report.segments_kept == 0
    assert report.tip_epoch == pre_epoch
    # Quarantine renames, never deletes: the evidence stays on disk.
    assert (tmp_path / "g.delta.0.quarantine.0").exists()
    assert (tmp_path / "g.delta.1.quarantine.0").exists()
    assert not (tmp_path / "g.delta.0").exists()
    assert store.load(verify=True).epoch == pre_epoch


def test_fsck_quarantines_only_the_broken_suffix(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst-1")
    store.checkpoint(graph)
    mid_epoch = graph.epoch
    graph.add_user("burst-2")
    store.checkpoint(graph)
    (tmp_path / "g.delta.1").write_bytes(b"garbage")
    report = store.fsck()
    assert report.healthy
    assert report.quarantined == ("g.delta.1.quarantine.0",)
    assert report.segments_kept == 1
    assert store.load(verify=True).epoch == mid_epoch


def test_fsck_quarantines_corrupt_base_with_whole_chain(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst")
    store.checkpoint(graph)
    base = tmp_path / "g.snap"
    base.write_bytes(b"\x00" * 64)
    report = store.fsck()
    assert report.healthy  # empty-and-recompilable counts as servable
    assert report.base_quarantined
    assert "g.snap.quarantine.0" in report.quarantined
    with pytest.raises(FileNotFoundError):
        store.load()


def test_quarantine_names_never_collide(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    for round_ in range(2):
        store.checkpoint(graph)
        (tmp_path / "g.snap").write_bytes(b"\x00" * 64)
        store.fsck()
        graph.add_user(f"round-{round_}")
    assert (tmp_path / "g.snap.quarantine.0").exists()
    assert (tmp_path / "g.snap.quarantine.1").exists()


# -------------------------------------------------------------------- healing


def test_load_or_compile_heals_corrupt_suffix(tmp_path):
    """A corrupt segment whose gap the journal covers loads as 'healed'."""
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst")
    store.checkpoint(graph)
    (tmp_path / "g.delta.0").write_bytes(b"broken segment")
    fresh = store_at(tmp_path)
    snapshot, source = fresh.load_or_compile(graph)
    assert source == "healed"
    assert snapshot.epoch == graph.epoch
    assert fresh.last_recovery is not None
    assert fresh.last_recovery.quarantined


def test_load_or_compile_recompiles_when_base_is_gone(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    (tmp_path / "g.snap").write_bytes(b"\x00" * 64)
    fresh = store_at(tmp_path)
    snapshot, source = fresh.load_or_compile(graph)
    assert source == "corrupt"
    assert snapshot.epoch == graph.epoch
    # The fallback rewrote the store: the next open is clean.
    assert store_at(tmp_path).load(verify=True).epoch == graph.epoch


def test_stat_reports_reliability_counters(tmp_path):
    store = store_at(tmp_path)
    graph = small_graph()
    store.checkpoint(graph)
    graph.add_user("burst")
    store.checkpoint(graph)
    (tmp_path / "g.delta.0").write_bytes(b"broken")
    store.fsck()
    disk = store.stat()
    assert disk["quarantine_files"] == 1
    assert disk["tmp_files"] == 0
    assert "checkpoint_retries_used" in disk
    assert "tmp_files_reaped" in disk


# ------------------------------------------------------------ service surface


def test_service_surfaces_recovery_in_statistics(tmp_path):
    graph = small_graph()
    seed_store = store_at(tmp_path)
    seed_store.checkpoint(graph)
    graph.add_user("burst")
    seed_store.checkpoint(graph)
    (tmp_path / "g.delta.0").write_bytes(b"broken")
    service = GraphService(graph, snapshot_path=tmp_path / "g.snap")
    assert service.warm_start == "healed"
    stats = service.statistics()
    assert stats["snapshot_fsck_quarantined"] == 1.0
    assert stats["snapshot_fsck_healthy"] == 1.0
    assert stats["snapshot_quarantine_files"] == 1.0
