"""The deprecation shims: old side-channel reads work, warn, and stay honest.

PR 5 replaced the mutable ``last_sweep_plan`` / ``last_audience_plans``
attributes with plans carried on results.  The attributes survive as
properties so pre-PR 5 call sites keep running unchanged — but every read
emits a :class:`DeprecationWarning` pointing at the replacement, and the
new plan-returning APIs emit nothing.
"""

from __future__ import annotations

import warnings

import pytest

from repro.policy.engine import AccessControlEngine
from repro.policy.path_expression import PathExpression
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine, create_evaluator


def _reads_warn_once_per_site(read):
    """Assert ``read()`` emits exactly one DeprecationWarning per call site."""
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("always")
        read()
        read()
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 2  # simplefilter("always"): one per read...
    with warnings.catch_warnings(record=True) as caught:
        warnings.simplefilter("default")
        read()
        read()
    deprecations = [w for w in caught if issubclass(w.category, DeprecationWarning)]
    assert len(deprecations) == 1  # ...default filter dedupes the site


class TestEngineSideChannel:
    def test_last_sweep_plan_still_works_and_warns(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        with pytest.deprecated_call():
            plan = engine.last_sweep_plan
        assert plan is not None and plan.owners == 2
        # Memo-warm call: the attribute keeps its historical semantics
        # (None when nothing was swept).
        engine.find_targets_many(["Alice", "Bill"], "friend+[1]")
        with pytest.deprecated_call():
            assert engine.last_sweep_plan is None

    def test_warns_once_per_call_site_under_the_default_filter(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        engine.find_targets_many(["Alice"], "friend+[1]")
        _reads_warn_once_per_site(lambda: engine.last_sweep_plan)

    def test_assignment_is_permitted_silently(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            engine.last_sweep_plan = None  # legacy resets keep working
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]

    def test_new_api_does_not_warn(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            audiences, plan = engine.sweep_targets_many(["Alice"], "friend+[1]")
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert plan is not None and audiences


class TestBackendSideChannels:
    @pytest.mark.parametrize(
        "backend", ["bfs", "dfs", "transitive-closure", "cluster-index"]
    )
    def test_every_backend_keeps_the_alias(self, backend, figure1):
        evaluator = create_evaluator(backend, figure1)
        evaluator.find_targets_many(["Alice"], PathExpression.parse("friend+[1]"))
        with pytest.deprecated_call():
            plan = evaluator.last_sweep_plan
        assert plan is not None and plan.owners == 1


class TestPolicySideChannel:
    def _engine(self, figure1) -> AccessControlEngine:
        store = PolicyStore()
        store.share("Alice", "photos")
        store.add_rule(AccessRule.build("photos", "Alice", "friend+[1,2]"))
        return AccessControlEngine(figure1, store, backend="bfs")

    def test_last_audience_plans_still_works_and_warns(self, figure1):
        engine = self._engine(figure1)
        engine.authorized_audiences(["photos"])
        with pytest.deprecated_call():
            plans = engine.last_audience_plans
        assert set(plans) == {"friend+[1,2]"}

    def test_new_api_does_not_warn(self, figure1):
        engine = self._engine(figure1)
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            audiences, plans = engine.audiences_with_plans(["photos"])
        assert not [w for w in caught if issubclass(w.category, DeprecationWarning)]
        assert set(plans) == {"friend+[1,2]"} and audiences
