"""GraphService end to end: execution, registry freshness, result plans."""

from __future__ import annotations

import pytest

from repro.exceptions import UnknownBackendError
from repro.policy.engine import AccessControlEngine
from repro.policy.rules import AccessRule
from repro.policy.store import PolicyStore
from repro.reachability.engine import ReachabilityEngine
from repro.service import (
    AccessQuery,
    AudienceQuery,
    BulkAccessQuery,
    GraphService,
    ReachQuery,
)


def service_over(figure1, **kwargs) -> GraphService:
    store = PolicyStore()
    store.share("Alice", "photos")
    store.add_rule(AccessRule.build("photos", "Alice", "friend+[1,2]/colleague+[1]"))
    store.share("David", "jokes")
    store.add_rule(AccessRule.build("jokes", "David", "friend-[1,2]"))
    return GraphService(figure1, store, **kwargs)


class TestExecuteDispatch:
    def test_reach_matches_the_engine(self, figure1):
        service = service_over(figure1)
        engine = ReachabilityEngine(figure1, "bfs")
        for source, target in (("Alice", "David"), ("David", "Alice"), ("Fred", "Bill")):
            result = service.execute(ReachQuery(source, target, "friend+[1,2]"))
            assert result.reachable == engine.is_reachable(source, target, "friend+[1,2]")
            assert result.plan.kind == "reach"
            assert result.plan.backend in service.backends
            assert result.elapsed_seconds >= 0.0

    def test_witnesses_travel_on_the_result(self, figure1):
        result = service_over(figure1).reach("Alice", "David", "friend+[1,2]")
        assert result.reachable and result.witness is not None
        assert result.witness.nodes()[0] == "Alice"
        assert result.counters  # work counters come along too

    def test_audience_matches_the_engine(self, figure1):
        service = service_over(figure1)
        engine = ReachabilityEngine(figure1, "bfs")
        result = service.execute(AudienceQuery(("Alice", "Bill"), "friend+[1,2]"))
        assert dict(result.audiences) == engine.find_targets_many(
            ["Alice", "Bill"], "friend+[1,2]"
        )
        assert result["Alice"] == result.audiences["Alice"]
        assert result.sweep_plan is not None and result.sweep_plan.owners == 2

    def test_access_matches_the_policy_engine(self, figure1):
        service = service_over(figure1)
        reference = AccessControlEngine(figure1, service.store, backend="bfs")
        for requester in sorted(figure1.users()):
            for resource in ("photos", "jokes"):
                got = service.execute(AccessQuery(requester, resource))
                assert got.granted == reference.is_allowed(requester, resource), (
                    requester, resource,
                )
        assert service.explain("Fred", "photos")  # explanations still render

    def test_bulk_access_matches_per_resource(self, figure1):
        service = service_over(figure1)
        result = service.execute(BulkAccessQuery(("photos", "jokes")))
        assert result["photos"] == service.authorized_audience("photos")
        assert result["jokes"] == service.authorized_audience("jokes")
        assert set(result.sweep_plans) <= {"friend+[1,2]/colleague+[1]", "friend-[1,2]"}

    def test_non_queries_are_rejected(self, figure1):
        with pytest.raises(TypeError):
            service_over(figure1).execute("friend+[1]")


class TestBackendPins:
    def test_per_query_pin_wins(self, figure1):
        service = service_over(figure1)
        result = service.reach("Alice", "David", "friend+[1,2]", backend="dfs")
        assert result.plan.backend == "dfs" and result.plan.backend_forced

    def test_service_wide_default_backend(self, figure1):
        service = service_over(figure1, default_backend="cluster-index")
        result = service.reach("Alice", "David", "friend+[1,2]")
        assert result.plan.backend == "cluster-index" and result.plan.backend_forced
        # "auto" on the query does not unpin the service default — the pin
        # is the service's configuration, the query just declines to add one.
        assert service.reach("Alice", "Bill", "friend+[1]").plan.backend == "cluster-index"

    def test_every_pinned_backend_agrees(self, figure1):
        service = service_over(figure1)
        for expression in ("friend+[1]", "friend+[1,2]", "friend*[1,2]"):
            reference = None
            for backend in service.backends:
                result = service.reach("Alice", "George", expression, backend=backend)
                if reference is None:
                    reference = result.reachable
                assert result.reachable == reference, (backend, expression)

    def test_unknown_pin_raises(self, figure1):
        service = service_over(figure1)
        with pytest.raises(UnknownBackendError):
            service.reach("Alice", "Bill", "friend+[1]", backend="oracle")
        with pytest.raises(UnknownBackendError):
            service_over(figure1, default_backend="oracle")

    def test_restricted_backend_set(self, figure1):
        service = GraphService(figure1, backends=("bfs", "dfs"))
        assert service.backends == ("bfs", "dfs")
        with pytest.raises(UnknownBackendError):
            service.reach("Alice", "Bill", "friend+[1]", backend="cluster-index")


class TestIndexFreshness:
    """The facade's contract: a query never reads a stale index."""

    def test_cluster_index_is_rebuilt_after_mutations(self, figure1):
        service = service_over(figure1, default_backend="cluster-index")
        assert not service.is_reachable("Alice", "Fred", "mentor+[1]")
        figure1.add_relationship("Alice", "Fred", "mentor")
        # A directly-held evaluator would still answer from its build-time
        # snapshot; the service rebuilds before routing the query.
        assert service.is_reachable("Alice", "Fred", "mentor+[1]")

    def test_transitive_closure_is_rebuilt_after_mutations(self, figure1):
        service = service_over(figure1, default_backend="transitive-closure")
        assert not service.is_reachable("Alice", "Fred", "mentor+[1]")
        figure1.add_relationship("Alice", "Fred", "mentor")
        assert service.is_reachable("Alice", "Fred", "mentor+[1]")

    def test_parsing_never_rebuilds_an_index_behind_the_planner(self, figure1):
        """Regression: _parse used to route through engine(), whose freshness
        check rebuilt a stale index backend just to parse text — even when
        the planner then chose an online backend."""
        service = service_over(figure1)
        service.reach("Alice", "Bill", "friend+[1]", backend="transitive-closure")
        built_at = service._built_epoch["transitive-closure"]
        figure1.update_user("Alice", age=33)  # stales the closure
        result = service.reach("Alice", "Bill", "friend+[1]")  # auto -> online
        assert result.plan.backend == "bfs"
        # The stale closure was not rebuilt as a parsing side effect.
        assert service._built_epoch["transitive-closure"] == built_at

    def test_stability_counter_resets_on_mutation(self, figure1):
        service = service_over(figure1)
        for _ in range(5):
            service.is_reachable("Alice", "Bill", "friend+[1]")
        assert service.statistics()["stability"] == 5.0
        figure1.update_user("Alice", age=31)
        service.is_reachable("Alice", "Bill", "friend+[1]")
        assert service.statistics()["stability"] == 0.0


class TestSweepPlanRace:
    """Regression for the PR 5 side-channel race: a memo-warm call must not
    disturb (or get confused with) an earlier call's executed sweep plan."""

    def test_warm_audience_results_carry_their_own_plan(self, figure1):
        service = service_over(figure1)
        cold = service.audience(["Alice", "Bill"], "friend+[1,2]")
        assert cold.sweep_plan is not None and cold.sweep_plan.owners == 2
        warm = service.audience(["Alice", "Bill"], "friend+[1,2]")
        # The warm call swept nothing: its result says so...
        assert warm.sweep_plan is None
        # ...and the cold result's plan is untouched — under the old
        # last_sweep_plan attribute the second call overwrote it with None.
        assert cold.sweep_plan is not None and cold.sweep_plan.owners == 2

    def test_engine_sweep_returns_the_plan_of_this_call(self, figure1):
        engine = ReachabilityEngine(figure1, "bfs")
        _, cold_plan = engine.sweep_targets_many(["Alice", "Bill"], "friend+[1]")
        assert cold_plan is not None and cold_plan.owners == 2
        # Partially warm: only the miss is swept, and the returned plan
        # describes exactly that one-owner sweep.
        _, partial_plan = engine.sweep_targets_many(["Alice", "George"], "friend+[1]")
        assert partial_plan is not None and partial_plan.owners == 1
        _, warm_plan = engine.sweep_targets_many(["Alice", "George"], "friend+[1]")
        assert warm_plan is None
        assert cold_plan.owners == 2  # immutably this call's plan


class TestDenialFeedbackFlip:
    """The service's observed-outcome feedback can flip auto-selection to
    the transitive closure on denial-heavy, mutation-free streams."""

    def _denial_material(self):
        from collections import deque

        from repro.graph.generators import preferential_attachment_graph

        graph = preferential_attachment_graph(150, edges_per_node=2, seed=5)
        users = sorted(graph.users(), key=str)
        source = users[0]
        ball = {source}
        queue = deque([source])
        while queue:
            user = queue.popleft()
            for neighbor in graph.successors(user):
                if neighbor not in ball:
                    ball.add(neighbor)
                    queue.append(neighbor)
        outside = [user for user in users if user not in ball]
        assert outside, "need forward-unreachable targets for a denial stream"
        return graph, source, outside

    def test_denial_stream_plus_stability_selects_the_closure(self):
        graph, source, outside = self._denial_material()
        service = GraphService(graph)
        expression = "friend+[1,3]/colleague+[1,2]"
        # Build up the observed unreachable rate (all denials)...
        for index in range(20):
            result = service.reach(
                source, outside[index % len(outside)], expression,
                collect_witness=False,
            )
            assert not result.reachable
            assert result.plan.backend == "bfs"  # cold: online stays cheapest
        # ...then fast-forward the mutation-free streak: the amortized build
        # charge melts and the planner flips to the closure's O(1) prune.
        service._stability = 10**9
        flipped = service.reach(
            source, outside[0], expression, collect_witness=False
        )
        assert flipped.plan.backend == "transitive-closure"
        assert not flipped.plan.backend_forced
        assert "unreachable rate" in flipped.plan.estimate_for(
            "transitive-closure"
        ).note
        # The flip built the index; answers stay identical to bfs.
        assert not flipped.reachable
        assert service.reach(
            source, outside[1], expression, collect_witness=False, backend="bfs"
        ).reachable == service.reach(
            source, outside[1], expression, collect_witness=False
        ).reachable

    def test_shifting_workload_decays_the_unreachable_rate(self):
        """The estimator is an EWMA, not a lifetime ratio: when a
        denial-heavy expression turns grant-heavy, the rate decays within
        ~3/alpha samples instead of being pinned near the historic average,
        and the planner stops discounting the closure for it."""
        graph, source, outside = self._denial_material()
        service = GraphService(graph)
        expression = "friend+[1,3]/colleague+[1,2]"
        text = service._parse(expression).to_text()
        for index in range(60):
            service.reach(
                source, outside[index % len(outside)], expression,
                collect_witness=False,
            )
        denial_rate = service._unreachable_rate(text)
        assert denial_rate > 0.5
        # The workload shifts to grants.  A lifetime [queries, denials]
        # ratio would still read ~0.33 after twice as many grants as
        # denials; the decayed estimate forgets the denial era.
        for _ in range(120):
            service._observe_outcome(text, reachable=True)
        decayed = service._unreachable_rate(text)
        assert decayed < 0.05
        # Even a fully melted build charge no longer flips the planner.
        service._stability = 10**9
        result = service.reach(
            source, outside[0], expression, collect_witness=False
        )
        assert result.plan.backend == "bfs"

    def test_feedback_needs_a_minimum_sample(self):
        graph, source, outside = self._denial_material()
        service = GraphService(graph)
        # Two denials are below the sample floor: the rate stays 0.0 and no
        # stability can talk the planner into an index build.
        for index in range(2):
            service.reach(
                source, outside[index], "friend+[1,3]/colleague+[1,2]",
                collect_witness=False,
            )
        service._stability = 10**9
        result = service.reach(
            source, outside[2], "friend+[1,3]/colleague+[1,2]",
            collect_witness=False,
        )
        assert result.plan.backend == "bfs"


class TestServiceBookkeeping:
    def test_statistics_aggregate_engines_and_planner(self, figure1):
        service = service_over(figure1)
        service.reach("Alice", "Bill", "friend+[1]")
        service.reach("Alice", "Bill", "friend+[1]")
        stats = service.statistics()
        assert stats["queries_executed"] == 2.0
        assert stats["planner_plans_computed"] >= 1.0
        assert stats["bfs_hits"] >= 1.0  # second call was a memo hit
        assert "bfs" in service.cache_info()

    def test_refresh_returns_the_compiled_snapshot(self, figure1):
        service = service_over(figure1)
        snapshot = service.refresh()
        assert snapshot.epoch == figure1.epoch
        figure1.update_user("Alice", age=32)
        assert service.refresh().epoch == figure1.epoch

    def test_repr_mentions_the_pin(self, figure1):
        assert "auto" in repr(service_over(figure1))
        assert "bfs" in repr(service_over(figure1, default_backend="bfs"))
