"""Cardinality feedback from every query shape into the planner's estimator.

The unreachable-rate EWMA used to learn only from ``reach`` queries; these
tests pin down the PR 8 satellite: ``access`` feeds one outcome per
evaluated condition, and ``audience`` / ``bulk_access`` feed *fractional*
samples (the unreached share of the live graph) — except when the answer is
partial, which must never be mistaken for low reachability.
"""

from repro.graph.social_graph import SocialGraph
from repro.policy.store import PolicyStore
from repro.reliability.guard import QueryGuard
from repro.service.facade import GraphService


def ring_graph(n=20):
    graph = SocialGraph("feedback")
    for i in range(n):
        graph.add_user(f"u{i}")
    for i in range(n):
        graph.add_relationship(f"u{i}", f"u{(i + 1) % n}", "friend")
    return graph


def shared_album(store, owner="u0", expression="friend+[1,3]"):
    store.share(owner, "album", kind="photos")
    store.allow("album", expression)
    return expression


def test_access_checks_feed_condition_outcomes():
    graph = ring_graph()
    store = PolicyStore()
    text = shared_album(store)
    service = GraphService(graph, store)
    assert text not in service._reach_outcomes
    granted = service.check("u2", "album")  # within 3 friend hops
    assert granted.granted
    samples, rate = service._reach_outcomes[text]
    assert samples == 1
    assert rate < 0.5  # a satisfied condition is a reachable outcome
    denied = service.check("u10", "album")
    assert not denied.granted
    assert service._reach_outcomes[text][0] == 2
    assert service._reach_outcomes[text][1] > rate  # denial raised the rate


def test_audience_feeds_a_fractional_sample():
    graph = ring_graph()
    service = GraphService(graph)
    text = "friend+[1,3]"
    result = service.audience(["u0"], text)
    assert not result.partial
    samples, rate = service._reach_outcomes[text]
    assert samples == 1
    # The audience reaches 3 of ~19 other users: a high unreached share,
    # scaled by the EWMA alpha on the very first sample.
    assert 0.0 < rate <= 1.0


def test_partial_audience_feeds_nothing():
    graph = ring_graph()
    service = GraphService(graph, query_guard=QueryGuard(max_steps=2))
    text = "friend+[1,19]"
    result = service.audience(["u0", "u1"], text)
    assert result.partial
    assert text not in service._reach_outcomes


def test_bulk_access_feeds_each_condition_once():
    graph = ring_graph()
    store = PolicyStore()
    text = shared_album(store)
    # A second resource with the same expression: the sample must still be
    # deduplicated to one observation per expression per bulk call.
    store.share("u5", "diary", kind="notes")
    store.allow("diary", text)
    service = GraphService(graph, store)
    service.bulk_access(["album", "diary"])
    samples, _rate = service._reach_outcomes[text]
    assert samples == 1


def test_feedback_eventually_moves_the_rate_estimate():
    graph = ring_graph()
    store = PolicyStore()
    text = shared_album(store)
    service = GraphService(graph, store)
    for _ in range(service._RATE_SAMPLE_FLOOR + 1):
        service.check("u10", "album")  # all denials
    assert service._unreachable_rate(text) > 0.0
