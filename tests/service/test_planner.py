"""The query planner's cost model, amortization flip and plan cache."""

from __future__ import annotations

import pytest

from repro.graph.compiled import compile_graph
from repro.graph.generators import preferential_attachment_graph
from repro.policy.path_expression import PathExpression
from repro.service.planner import QueryPlanner

BACKENDS = ("bfs", "dfs", "transitive-closure", "cluster-index")

#: Nothing fresh but the online walks — the cold-start state of a service.
COLD = {"bfs": True, "dfs": True, "transitive-closure": False, "cluster-index": False}
#: The transitive closure is built and current.
TC_FRESH = dict(COLD, **{"transitive-closure": True})

CHEAP = PathExpression.parse("friend+[1]")
HEAVY = PathExpression.parse("friend+[1,3]/colleague+[1,2]")
MIXED_DIRECTIONS = PathExpression.parse("friend-[1,3]/colleague*[1,2]")


@pytest.fixture(scope="module")
def snapshot():
    return compile_graph(preferential_attachment_graph(300, edges_per_node=3, seed=9))


def plan(planner, snapshot, expression, *, fresh, stability, pinned=None, rate=0.0):
    return planner.plan_reach(
        snapshot, expression,
        backends=BACKENDS, fresh=fresh, stability=stability, pinned=pinned,
        unreachable_rate=rate,
    )


class TestReachCostModel:
    def test_queries_run_online_without_denial_feedback(self, snapshot):
        for expression in (CHEAP, HEAVY):
            verdict = plan(
                QueryPlanner(), snapshot, expression, fresh=TC_FRESH, stability=10**9
            )
            assert verdict.backend == "bfs"
            assert not verdict.backend_forced
            # The full cost table travels on the plan for post-hoc grading.
            assert {e.backend for e in verdict.estimates} == set(BACKENDS)

    def test_cluster_index_is_never_cheapest_on_point_queries(self, snapshot):
        # Measured reality (PERF-1): the compiled product walk beats the
        # cluster index on point queries, so the honest model prices it out
        # of auto-selection; it stays fully available as a pin.
        fresh_cluster = dict(COLD, **{"cluster-index": True})
        for expression in (CHEAP, HEAVY, MIXED_DIRECTIONS):
            verdict = plan(
                QueryPlanner(), snapshot, expression,
                fresh=fresh_cluster, stability=10**9,
            )
            assert verdict.backend != "cluster-index"
            cluster = verdict.estimate_for("cluster-index")
            bfs = verdict.estimate_for("bfs")
            assert cluster.query_cost > bfs.query_cost

    def test_denial_feedback_prefers_a_fresh_closure(self, snapshot):
        verdict = plan(
            QueryPlanner(), snapshot, HEAVY, fresh=TC_FRESH, stability=0, rate=1.0
        )
        assert verdict.backend == "transitive-closure"
        closure = verdict.estimate_for("transitive-closure")
        bfs = verdict.estimate_for("bfs")
        assert closure.total < bfs.total
        assert closure.build_charge == 0.0  # fresh: no build to amortize
        assert "unreachable rate" in closure.note

    def test_mixed_direction_expressions_barely_discount_the_closure(self, snapshot):
        # The undirected closure prunes almost nothing, whatever the rate.
        verdict = plan(
            QueryPlanner(), snapshot, MIXED_DIRECTIONS,
            fresh=TC_FRESH, stability=10**9, rate=1.0,
        )
        assert verdict.backend == "bfs"

    def test_unbuilt_index_is_charged_its_build(self, snapshot):
        verdict = plan(QueryPlanner(), snapshot, HEAVY, fresh=COLD, stability=0, rate=1.0)
        assert verdict.backend == "bfs"  # build / 1 query dwarfs any saving
        closure = verdict.estimate_for("transitive-closure")
        assert closure.build_cost > 0 and closure.build_charge == closure.build_cost

    def test_stability_amortizes_the_build_until_the_closure_flips(self, snapshot):
        planner = QueryPlanner()
        early = plan(planner, snapshot, HEAVY, fresh=COLD, stability=1, rate=1.0)
        assert early.backend == "bfs"
        flipped = plan(planner, snapshot, HEAVY, fresh=COLD, stability=10**9, rate=1.0)
        assert flipped.backend == "transitive-closure"
        assert flipped.estimate_for("transitive-closure").build_charge < 1.0

    def test_without_feedback_no_stability_flips_anything(self, snapshot):
        # rate=0: the closure is pure overhead, cluster is a slower walk —
        # bfs stays cheapest at any stability.
        verdict = plan(QueryPlanner(), snapshot, HEAVY, fresh=COLD, stability=10**9)
        assert verdict.backend == "bfs"

    def test_pinned_backend_is_forced_and_not_second_guessed(self, snapshot):
        for name in ("transitive-closure", "cluster-index", "dfs"):
            verdict = plan(
                QueryPlanner(), snapshot, CHEAP, fresh=COLD, stability=0, pinned=name
            )
            assert verdict.backend == name
            assert verdict.backend_forced

    def test_expansion_limit_rules_the_cluster_index_out(self, snapshot):
        planner = QueryPlanner(backend_options={"cluster-index": {"expansion_limit": 2}})
        wide = PathExpression.parse("friend+[1,3]/friend+[1,3]")  # 9 expansions
        verdict = plan(planner, snapshot, wide, fresh=COLD, stability=0)
        cluster = verdict.estimate_for("cluster-index")
        assert not cluster.available and "expansion" in cluster.note


class TestPlanCache:
    def test_warm_plans_come_from_the_cache(self, snapshot):
        planner = QueryPlanner()
        first = plan(planner, snapshot, CHEAP, fresh=COLD, stability=5)
        second = plan(planner, snapshot, CHEAP, fresh=COLD, stability=6)
        assert second is first  # same object: one dict probe on the warm path
        assert planner.plans_computed == 1 and planner.plans_cached == 1

    def test_cache_replans_when_the_amortization_could_flip(self, snapshot):
        planner = QueryPlanner()
        early = plan(planner, snapshot, HEAVY, fresh=COLD, stability=1, rate=1.0)
        assert early.backend == "bfs"
        # Before the flip point: served from cache, still bfs.
        assert plan(planner, snapshot, HEAVY, fresh=COLD, stability=2, rate=1.0) is early
        late = plan(planner, snapshot, HEAVY, fresh=COLD, stability=10**9, rate=1.0)
        assert late is not early and late.backend == "transitive-closure"

    def test_freshness_change_is_a_different_cache_key(self, snapshot):
        planner = QueryPlanner()
        cold = plan(planner, snapshot, HEAVY, fresh=COLD, stability=0, rate=1.0)
        fresh = plan(planner, snapshot, HEAVY, fresh=TC_FRESH, stability=0, rate=1.0)
        assert cold.backend == "bfs" and fresh.backend == "transitive-closure"

    def test_rate_buckets_are_different_cache_keys(self, snapshot):
        planner = QueryPlanner()
        low = plan(planner, snapshot, HEAVY, fresh=TC_FRESH, stability=0, rate=0.0)
        high = plan(planner, snapshot, HEAVY, fresh=TC_FRESH, stability=0, rate=1.0)
        assert low.backend == "bfs" and high.backend == "transitive-closure"
        # A drifting rate maps onto a bounded number of buckets, not one
        # cache entry per query.
        assert plan(
            planner, snapshot, HEAVY, fresh=TC_FRESH, stability=1, rate=0.99
        ).backend == "transitive-closure"

    def test_audience_plans_cache_too(self, snapshot):
        planner = QueryPlanner()
        first = planner.plan_audience(
            snapshot, CHEAP, 4,
            backends=BACKENDS, fresh=COLD, stability=0,
        )
        second = planner.plan_audience(
            snapshot, CHEAP, 9,
            backends=BACKENDS, fresh=COLD, stability=1,
        )
        assert first.backend == "bfs" and second is first


class TestAudiencePlanning:
    def test_auto_keeps_audiences_online_and_carries_the_direction_pin(self, snapshot):
        verdict = QueryPlanner().plan_audience(
            snapshot, HEAVY, 32,
            backends=BACKENDS, fresh=TC_FRESH, stability=10**9,
            direction="reverse",
        )
        assert verdict.backend == "bfs"
        assert verdict.direction == "reverse"
        assert verdict.kind == "audience"

    def test_pin_routes_audiences_through_any_backend(self, snapshot):
        verdict = QueryPlanner().plan_audience(
            snapshot, CHEAP, 2,
            backends=BACKENDS, fresh=COLD, stability=0, pinned="cluster-index",
        )
        assert verdict.backend == "cluster-index" and verdict.backend_forced
