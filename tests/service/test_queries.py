"""The typed query layer: normalization, validation, immutability."""

from __future__ import annotations

import dataclasses

import pytest

from repro.service.queries import (
    AccessQuery,
    AudienceQuery,
    BulkAccessQuery,
    ReachQuery,
)


class TestReachQuery:
    def test_defaults_and_kind(self):
        query = ReachQuery("a", "b", "friend+[1]")
        assert query.collect_witness is True
        assert query.backend is None
        assert query.kind == "reach"

    def test_is_frozen(self):
        query = ReachQuery("a", "b", "friend+[1]")
        with pytest.raises(dataclasses.FrozenInstanceError):
            query.source = "c"


class TestAudienceQuery:
    def test_single_owner_becomes_a_tuple(self):
        assert AudienceQuery("alice", "friend+[1]").owners == ("alice",)

    def test_iterables_normalize_to_tuples(self):
        assert AudienceQuery(["a", "b"], "friend+[1]").owners == ("a", "b")
        assert AudienceQuery(("a", "b"), "friend+[1]").owners == ("a", "b")

    def test_sets_get_a_deterministic_order(self):
        assert AudienceQuery({"b", "a"}, "friend+[1]").owners == ("a", "b")

    def test_direction_is_validated(self):
        with pytest.raises(ValueError):
            AudienceQuery("a", "friend+[1]", direction="sideways")

    def test_kind(self):
        assert AudienceQuery("a", "friend+[1]").kind == "audience"


class TestAccessQuery:
    def test_defaults(self):
        query = AccessQuery("bob", "photos")
        assert query.explain is True and query.backend is None
        assert query.kind == "access"


class TestBulkAccessQuery:
    def test_resource_ids_normalize(self):
        assert BulkAccessQuery("photos").resource_ids == ("photos",)
        assert BulkAccessQuery(["a", "b"]).resource_ids == ("a", "b")

    def test_direction_is_validated(self):
        with pytest.raises(ValueError):
            BulkAccessQuery(["a"], direction="nope")
