"""GraphService.reach_many: the coalescing-friendly bulk reach entry point."""

import random

import pytest

from repro.exceptions import NodeNotFoundError
from repro.reliability.guard import QueryGuard
from repro.service.facade import GraphService
from repro.service.results import BulkReachResult
from repro.workloads import WorkloadSpec, build_workload


def _service(users=120, seed=13, **kwargs):
    workload = build_workload(WorkloadSpec(users=users, seed=seed))
    return GraphService(workload.graph, **kwargs), workload


def test_reach_many_matches_per_pair_reach():
    service, workload = _service()
    twin, _ = _service()
    users = sorted(workload.graph.users())
    rng = random.Random(3)
    pairs = [(rng.choice(users), rng.choice(users)) for _ in range(20)]
    result = service.reach_many(pairs, "friend+[1,2]")
    assert isinstance(result, BulkReachResult)
    assert len(result) == len(set(pairs))
    for source, target in pairs:
        expected = twin.reach(
            source, target, "friend+[1,2]", collect_witness=False
        ).reachable
        assert result[(source, target)] == expected, (source, target)
    assert result.partial is False
    assert result.plan.backend in service.backends or result.plan.route == "sharded"


def test_reach_many_deduplicates_sources_into_one_sweep():
    service, workload = _service()
    users = sorted(workload.graph.users())
    pairs = [(users[0], users[i]) for i in range(1, 9)]  # one source, 8 targets
    result = service.reach_many(pairs, "friend+[1,2]")
    assert len(result) == 8
    # One owner swept once: the sweep plan (when a sweep ran at all) covers
    # a single source.
    if result.sweep_plan is not None:
        assert result.sweep_plan.owners == 1


def test_reach_many_validates_endpoints_up_front():
    service, workload = _service()
    users = sorted(workload.graph.users())
    with pytest.raises(NodeNotFoundError):
        service.reach_many([(users[0], "ghost")], "friend+[1]")
    with pytest.raises(NodeNotFoundError):
        service.reach_many([("ghost", users[0])], "friend+[1]")


def test_reach_many_partial_under_tiny_budget():
    service, workload = _service(
        users=200, query_guard=QueryGuard(max_steps=5, check_interval=1)
    )
    users = sorted(workload.graph.users())
    pairs = [(users[i], users[i + 50]) for i in range(30)]
    result = service.reach_many(pairs, "friend+[1,2]/colleague+[1]")
    assert result.partial is True
    assert service.statistics()["queries_degraded"] >= 1.0


def test_reach_many_accepts_empty_pair_list():
    service, _workload = _service()
    result = service.reach_many([], "friend+[1]")
    assert len(result) == 0 and result.partial is False


def test_reach_many_result_mapping_protocol():
    service, workload = _service()
    users = sorted(workload.graph.users())
    result = service.reach_many([(users[0], users[1])], "friend+[1]")
    assert set(iter(result)) == {(users[0], users[1])}
    assert isinstance(result[(users[0], users[1])], bool)
