"""Admission control: bounded pending queue, rejections, deadlines."""

import asyncio
import time

import pytest

from repro.exceptions import AdmissionRejected, QueryBudgetExceeded
from repro.reliability.guard import QueryGuard
from repro.service.facade import GraphService
from repro.serving.admission import AdmissionController
from repro.serving.session import TenantSession
from repro.workloads import WorkloadSpec, build_workload, install_policies


def _service(users=100, seed=9, **kwargs):
    workload = build_workload(WorkloadSpec(users=users, seed=seed))
    service = GraphService(workload.graph, **kwargs)
    install_policies(service, workload)
    return service, workload


# ----------------------------------------------------------------- controller


def test_admit_release_counters():
    controller = AdmissionController("t", max_pending=2)
    controller.admit()
    controller.admit()
    assert controller.pending == 2 and controller.peak_pending == 2
    controller.release()
    controller.admit()
    assert controller.admitted == 3
    stats = controller.statistics()
    assert stats["pending"] == 2.0 and stats["peak_pending"] == 2.0


def test_admit_rejects_at_capacity_with_typed_error():
    controller = AdmissionController("tenant-x", max_pending=1)
    controller.admit()
    with pytest.raises(AdmissionRejected) as excinfo:
        controller.admit()
    error = excinfo.value
    assert error.tenant == "tenant-x"
    assert error.pending == 1 and error.limit == 1
    assert controller.rejected == 1
    controller.release()
    controller.admit()  # capacity freed -> admitted again


def test_release_without_admit_is_an_error():
    controller = AdmissionController("t")
    with pytest.raises(RuntimeError):
        controller.release()


def test_deadline_for_prefers_explicit_timeout():
    controller = AdmissionController("t", default_timeout=10.0)
    assert controller.deadline_for(None) == pytest.approx(
        time.monotonic() + 10.0, abs=0.5
    )
    assert controller.deadline_for(0.25) == pytest.approx(
        time.monotonic() + 0.25, abs=0.5
    )
    assert AdmissionController("t").deadline_for(None) is None


def test_invalid_max_pending():
    with pytest.raises(ValueError):
        AdmissionController("t", max_pending=0)


# -------------------------------------------------------------- via sessions


def test_session_sheds_load_when_queue_is_full():
    """With max_pending=4, a burst of 12 gets exactly 8 typed rejections
    while requests sitting in the gather window count as pending."""
    service, workload = _service()
    users = sorted(workload.graph.users())

    async def main():
        session = TenantSession(
            "t", service, window=0.5, max_batch=64, max_pending=4
        )
        try:
            outcomes = await asyncio.gather(
                *(
                    session.reach(users[i], users[i + 1], "friend+[1]")
                    for i in range(12)
                ),
                return_exceptions=True,
            )
        finally:
            await session.close()
        return outcomes

    outcomes = asyncio.run(main())
    rejected = [o for o in outcomes if isinstance(o, AdmissionRejected)]
    served = [o for o in outcomes if not isinstance(o, BaseException)]
    assert len(rejected) == 8 and len(served) == 4
    assert service.statistics()["admission_rejected"] == 8.0
    assert service.statistics()["admission_peak_pending"] == 4.0


def test_expired_deadline_surfaces_typed_budget_error():
    """A deadline already in the past trips the guard: the point shape
    answers with QueryBudgetExceeded, exactly as a sequential guarded call."""
    service, workload = _service(query_guard=QueryGuard(check_interval=1))
    users = sorted(workload.graph.users())

    async def main():
        session = TenantSession("t", service, window=0.05)
        try:
            return await asyncio.gather(
                session.reach(
                    users[0], users[5], "friend+[1,2]", timeout=-1.0
                ),
                return_exceptions=True,
            )
        finally:
            await session.close()

    (outcome,) = asyncio.run(main())
    assert isinstance(outcome, QueryBudgetExceeded)


def test_generous_deadline_does_not_interfere():
    service, workload = _service(query_guard=QueryGuard(check_interval=1))
    users = sorted(workload.graph.users())

    async def main():
        session = TenantSession("t", service, window=0.02, default_timeout=30.0)
        try:
            return await session.reach(users[0], users[5], "friend+[1,2]")
        finally:
            await session.close()

    served = asyncio.run(main())
    assert isinstance(served.reachable, bool)


def test_closed_session_refuses_new_requests():
    service, workload = _service()
    users = sorted(workload.graph.users())

    async def main():
        session = TenantSession("t", service)
        await session.close()
        with pytest.raises(RuntimeError):
            await session.reach(users[0], users[1], "friend+[1]")

    asyncio.run(main())
