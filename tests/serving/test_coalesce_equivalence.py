"""Differential property harness: coalesced serving ≡ sequential service.

The serving tentpole's contract is that answers produced through the
coalescer are indistinguishable from running the same requests one at a
time against a plain :class:`GraphService`.  The harness drives K
concurrent clients through a :class:`TenantSession` (a large gather
window makes batching deterministic), replays the identical request list
sequentially against an independently built twin service over the same
seeded workload, and compares every answer — including scenarios where a
:class:`QueryGuard` trips the batch (exercising the sequential fallback)
and where a circuit breaker has rerouted the backend.
"""

import asyncio
import random

import pytest

from repro.exceptions import NodeNotFoundError, QueryBudgetExceeded
from repro.reliability.guard import QueryGuard
from repro.service.facade import GraphService
from repro.serving.session import TenantSession
from repro.workloads import WorkloadSpec, build_workload, install_policies

#: Wide enough that every concurrently submitted request of a key lands in
#: one batch regardless of scheduler jitter: batching becomes deterministic.
WINDOW = 0.25

EXPRESSIONS = (
    "friend+[1]",
    "friend+[1,2]",
    "friend+[1,2]/colleague+[1]",
    "colleague*[1,2]",
)
#: Disjoint expression pools per query shape for the guard-trip scenarios:
#: a shape must not be served from memo warmth another shape created, or
#: the sequential twin (which never ran the other shape) would diverge.
REACH_EXPRESSIONS = ("friend+[1,2]", "friend+[1]/colleague+[1]")
AUDIENCE_EXPRESSIONS = ("colleague+[1,2]", "parent+[1]/friend+[1]")


def _twin_services(users=140, seed=11, **service_kwargs):
    """Two independent services over identically generated workloads."""
    served_workload = build_workload(WorkloadSpec(users=users, seed=seed))
    sequential_workload = build_workload(WorkloadSpec(users=users, seed=seed))
    served = GraphService(served_workload.graph, **service_kwargs)
    sequential = GraphService(sequential_workload.graph, **service_kwargs)
    install_policies(served, served_workload)
    install_policies(sequential, sequential_workload)
    return served, sequential, served_workload


def _random_requests(workload, rng, count):
    """A seeded mixed request list over the workload's population."""
    users = sorted(workload.graph.users())
    requests = []
    for _ in range(count):
        shape = rng.choice(("reach", "audience", "check"))
        if shape == "reach":
            requests.append(
                (
                    "reach",
                    rng.choice(users),
                    rng.choice(users),
                    rng.choice(EXPRESSIONS),
                )
            )
        elif shape == "audience":
            requests.append(
                ("audience", rng.choice(users), rng.choice(EXPRESSIONS))
            )
        else:
            requester = rng.choice(users)
            resource_id = rng.choice(workload.resources)[0]
            requests.append(("check", requester, resource_id))
    return requests


async def _serve_all(session, requests):
    """Issue every request concurrently through the session."""

    async def one(request):
        try:
            if request[0] == "reach":
                return await session.reach(request[1], request[2], request[3])
            if request[0] == "audience":
                return await session.audience(request[1], request[2])
            return await session.check(request[1], request[2])
        except Exception as error:  # compared against the sequential error
            return error

    return await asyncio.gather(*(one(request) for request in requests))


def _sequential_answer(service, request):
    """The ground truth: the same request against the plain service."""
    try:
        if request[0] == "reach":
            return service.reach(
                request[1], request[2], request[3], collect_witness=False
            ).reachable
        if request[0] == "audience":
            result = service.audience(request[1], request[2])
            return (set(result.audiences.get(request[1], set())), result.partial)
        return service.check(request[1], request[2], explain=False).granted
    except Exception as error:
        return error


def _assert_equivalent(request, served, expected):
    if isinstance(expected, Exception):
        assert isinstance(served, type(expected)), (request, served, expected)
        return
    if request[0] == "reach":
        assert served.reachable == expected, (request, served, expected)
    elif request[0] == "audience":
        audience, partial = expected
        assert set(served.audience) == audience, (request, served, expected)
        assert served.partial == partial, (request, served, expected)
    else:
        assert served.granted == expected, (request, served, expected)


def _run(coro):
    return asyncio.run(coro)


# --------------------------------------------------------------- properties


@pytest.mark.parametrize("seed", [0, 1, 2, 3, 4])
def test_concurrent_clients_match_sequential(seed):
    """K concurrent mixed-shape clients ≡ the same list run sequentially."""
    served_service, sequential_service, workload = _twin_services(seed=11 + seed)
    rng = random.Random(seed)
    requests = _random_requests(workload, rng, count=48)

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await _serve_all(session, requests)
        finally:
            await session.close()

    served_answers = _run(main())
    for request, served in zip(requests, served_answers):
        expected = _sequential_answer(sequential_service, request)
        _assert_equivalent(request, served, expected)


def test_coalescing_actually_happened():
    """The property run must exercise batches, not degenerate to solo."""
    served_service, _sequential, workload = _twin_services(seed=23)
    users = sorted(workload.graph.users())[:16]

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            served = await asyncio.gather(
                *(
                    session.reach(user, users[(i + 5) % 16], "friend+[1,2]")
                    for i, user in enumerate(users)
                )
            )
        finally:
            await session.close()
        return served

    served = _run(main())
    sizes = {answer.batch_size for answer in served}
    assert max(sizes) >= 2, sizes
    assert all(answer.coalesced for answer in served if answer.batch_size > 1)
    stats = served_service.statistics()
    assert stats["coalescer_requests_coalesced"] >= 2
    assert stats["coalescer_batches_executed"] >= 1


@pytest.mark.parametrize("seed", [0, 1, 2])
def test_guard_tripped_batches_fall_back_to_sequential(seed):
    """A budget small enough to trip batches still serves sequential answers.

    The step budget is sized so one query fits but a coalesced batch
    usually does not: batches trip, the session falls back per request,
    and every answer (including per-request partials) must equal the
    sequential twin's.  Reach and audience use disjoint expression pools
    so no shape is served from memo warmth the sequential twin never built.
    """
    guard_kwargs = dict(max_steps=100, check_interval=16)
    served_service, sequential_service, workload = _twin_services(
        users=160,
        seed=31 + seed,
        query_guard=QueryGuard(**guard_kwargs),
    )
    sequential_service.query_guard = QueryGuard(**guard_kwargs)
    rng = random.Random(100 + seed)
    users = sorted(workload.graph.users())
    requests = []
    for _ in range(24):
        if rng.random() < 0.5:
            requests.append(
                (
                    "reach",
                    rng.choice(users),
                    rng.choice(users),
                    rng.choice(REACH_EXPRESSIONS),
                )
            )
        else:
            requests.append(
                ("audience", rng.choice(users), rng.choice(AUDIENCE_EXPRESSIONS))
            )

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await _serve_all(session, requests)
        finally:
            await session.close()

    served_answers = _run(main())
    for request, served in zip(requests, served_answers):
        expected = _sequential_answer(sequential_service, request)
        _assert_equivalent(request, served, expected)
    # The scenario must actually have exercised the fallback path.
    assert served_service.statistics()["serving_fallbacks"] > 0


def test_breaker_rerouted_backend_still_equivalent():
    """Coalesced answers stay correct when the index backend is broken.

    Forcing the cluster-index breaker open makes the planner reroute to a
    walking backend; the bulk sweeps still answer, and answers still match
    a sequential twin whose breaker is equally open.
    """
    served_service, sequential_service, workload = _twin_services(seed=47)
    for service in (served_service, sequential_service):
        for breaker in service.breakers.values():
            for _ in range(16):
                breaker.record_failure(reason="forced for the test")
            assert breaker.blocking
    rng = random.Random(7)
    requests = _random_requests(workload, rng, count=24)

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await _serve_all(session, requests)
        finally:
            await session.close()

    served_answers = _run(main())
    for request, served in zip(requests, served_answers):
        expected = _sequential_answer(sequential_service, request)
        _assert_equivalent(request, served, expected)


def test_absent_endpoint_errors_only_its_own_request():
    """A batch member with an absent node gets NodeNotFoundError; its
    batch-mates are served normally from the shared sweep."""
    served_service, sequential_service, workload = _twin_services(seed=53)
    users = sorted(workload.graph.users())

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await asyncio.gather(
                session.reach(users[0], users[1], "friend+[1,2]"),
                session.reach(users[2], "no-such-user", "friend+[1,2]"),
                session.reach(users[3], users[4], "friend+[1,2]"),
                return_exceptions=True,
            )
        finally:
            await session.close()

    first, missing, third = _run(main())
    assert isinstance(missing, NodeNotFoundError)
    for served in (first, third):
        expected = sequential_service.reach(
            served.source, served.target, "friend+[1,2]", collect_witness=False
        ).reachable
        assert served.reachable == expected


def test_access_trivial_decisions_match_sequential():
    """Owner grants and no-rule defaults ride the solo path, unchanged."""
    served_service, sequential_service, workload = _twin_services(seed=61)
    owner = workload.resources[0][1]
    resource_id = workload.resources[0][0]
    # A resource with no rules at all (owner-private under DENY default).
    served_service.store.share(owner, "bare-resource")
    sequential_service.store.share(owner, "bare-resource")
    users = sorted(workload.graph.users())
    requests = [
        ("check", owner, resource_id),  # owner always granted
        ("check", owner, "bare-resource"),  # owner of a rule-less resource
        ("check", users[5], "bare-resource"),  # stranger, no rules -> default
        ("check", users[5], resource_id),  # ruled resource, bulk path
    ]

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await _serve_all(session, requests)
        finally:
            await session.close()

    for request, served in zip(requests, _run(main())):
        expected = _sequential_answer(sequential_service, request)
        _assert_equivalent(request, served, expected)


def test_witness_requests_take_solo_path_and_return_paths():
    served_service, sequential_service, workload = _twin_services(seed=67)
    users = sorted(workload.graph.users())
    source, target = users[0], users[1]

    async def main():
        session = TenantSession("t", served_service, window=WINDOW)
        try:
            return await session.reach(source, target, "friend+[1,2]", witness=True)
        finally:
            await session.close()

    served = _run(main())
    expected = sequential_service.reach(source, target, "friend+[1,2]")
    assert served.reachable == expected.reachable
    assert served.coalesced is False and served.batch_size == 1
    if expected.reachable:
        assert served.witness is not None
    assert served_service.statistics()["serving_solo_requests"] == 1


def test_point_budget_errors_surface_typed_after_fallback():
    """When even a single query exceeds the budget, the served error is the
    same typed QueryBudgetExceeded the sequential path raises."""
    guard_kwargs = dict(max_steps=3, check_interval=1)
    served_service, sequential_service, workload = _twin_services(
        users=160, seed=71, query_guard=QueryGuard(**guard_kwargs)
    )
    sequential_service.query_guard = QueryGuard(**guard_kwargs)
    users = sorted(workload.graph.users())
    requests = [
        ("reach", users[i], users[i + 20], "friend+[1,2]/colleague+[1]")
        for i in range(6)
    ]

    async def main():
        session = TenantSession("t", served_service, window=WINDOW, max_batch=64)
        try:
            return await _serve_all(session, requests)
        finally:
            await session.close()

    served_answers = _run(main())
    tripped = 0
    for request, served in zip(requests, served_answers):
        expected = _sequential_answer(sequential_service, request)
        _assert_equivalent(request, served, expected)
        tripped += isinstance(served, QueryBudgetExceeded)
    assert tripped > 0  # the scenario actually exercised budget errors
