"""Unit behavior of the generic RequestCoalescer (no graph involved)."""

import asyncio

import pytest

from repro.serving.coalescer import Raised, RequestCoalescer


def _run(coro):
    return asyncio.run(coro)


def _echo_runner(calls):
    async def runner(key, requests):
        calls.append((key, list(requests)))
        return [f"{key}:{request}" for request in requests]

    return runner


def test_concurrent_same_key_requests_share_one_batch():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=0.05, max_batch=8)
        return await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(5))
        )

    results = _run(main())
    assert results == [f"k:{i}" for i in range(5)]
    assert len(calls) == 1 and len(calls[0][1]) == 5


def test_distinct_keys_batch_separately():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=0.05)
        return await asyncio.gather(
            coalescer.submit("a", 1), coalescer.submit("b", 2)
        )

    assert _run(main()) == ["a:1", "b:2"]
    assert sorted(key for key, _ in calls) == ["a", "b"]


def test_zero_window_degrades_to_request_at_a_time():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=0.0)
        return await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(4))
        )

    _run(main())
    assert len(calls) == 4
    assert all(len(batch) == 1 for _key, batch in calls)


def test_max_batch_cap_flushes_early():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=5.0, max_batch=3)
        return await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(7))
        )

    _run(main())  # completes promptly despite the 5s window: caps flush
    sizes = sorted(len(batch) for _key, batch in calls)
    assert sizes == [1, 3, 3]


def test_raised_outcome_targets_only_its_request():
    async def runner(key, requests):
        return [
            Raised(ValueError(f"bad {request}")) if request % 2 else request
            for request in requests
        ]

    async def main():
        coalescer = RequestCoalescer(runner, window=0.05)
        return await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(4)),
            return_exceptions=True,
        )

    even_a, odd_a, even_b, odd_b = _run(main())
    assert even_a == 0 and even_b == 2
    assert isinstance(odd_a, ValueError) and isinstance(odd_b, ValueError)


def test_runner_exception_fans_out_to_every_member():
    async def runner(key, requests):
        raise RuntimeError("backend exploded")

    async def main():
        coalescer = RequestCoalescer(runner, window=0.05)
        outcomes = await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(3)),
            return_exceptions=True,
        )
        return outcomes, coalescer

    outcomes, coalescer = _run(main())
    assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)
    assert coalescer.runner_failures == 1


def test_mismatched_outcome_count_is_a_runner_failure():
    async def runner(key, requests):
        return ["only-one"]

    async def main():
        coalescer = RequestCoalescer(runner, window=0.05)
        return await asyncio.gather(
            *(coalescer.submit("k", i) for i in range(2)),
            return_exceptions=True,
        )

    outcomes = _run(main())
    assert all(isinstance(outcome, RuntimeError) for outcome in outcomes)


def test_statistics_and_histogram_buckets():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=0.05, max_batch=8)
        await asyncio.gather(*(coalescer.submit("k", i) for i in range(5)))
        await coalescer.submit("solo", 99)
        return coalescer

    coalescer = _run(main())
    stats = coalescer.statistics()
    assert stats["requests_submitted"] == 6.0
    assert stats["requests_coalesced"] == 5.0
    assert stats["batches_executed"] == 2.0
    assert stats["batch_le_1"] == 1.0  # the solo batch
    assert stats["batch_le_8"] == 1.0  # the 5-wide batch
    assert stats["open_batches"] == 0.0


def test_invalid_max_batch():
    with pytest.raises(ValueError):
        RequestCoalescer(_echo_runner([]), max_batch=0)


def test_drain_flushes_open_batches():
    calls = []

    async def main():
        coalescer = RequestCoalescer(_echo_runner(calls), window=30.0)
        pending = asyncio.ensure_future(coalescer.submit("k", 1))
        await asyncio.sleep(0)  # the batch is open, timer far in the future
        await coalescer.drain()
        return await pending

    assert _run(main()) == "k:1"
    assert len(calls) == 1
