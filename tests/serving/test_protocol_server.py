"""Wire protocol framing and the asyncio TCP server, end to end."""

import asyncio
import json

import pytest

from repro.exceptions import ProtocolError
from repro.serving.protocol import (
    MAX_FRAME_BYTES,
    decode_frame,
    encode_frame,
    error_frame,
    jsonable,
    result_frame,
)
from repro.serving.server import ServingServer
from repro.serving.session import TenantRegistry
from repro.workloads import WorkloadSpec, build_workload, install_policies

# ------------------------------------------------------------------ protocol


def test_jsonable_sorts_sets_deterministically():
    assert jsonable({"aud": {"b", "a", "c"}}) == {"aud": ["a", "b", "c"]}
    assert jsonable((1, 2, {"x"})) == [1, 2, ["x"]]
    assert jsonable({1: "a"}) == {"1": "a"}


def test_encode_decode_round_trip():
    frame = {"id": 7, "op": "check", "tenant": "t", "nested": {"s": {"x", "y"}}}
    line = encode_frame(frame)
    assert line.endswith(b"\n")
    decoded = decode_frame(line)
    assert decoded["id"] == 7 and decoded["nested"]["s"] == ["x", "y"]


@pytest.mark.parametrize(
    "line",
    [b"", b"   \n", b"not json\n", b"[1, 2]\n", b'"just a string"\n'],
)
def test_decode_rejects_malformed_frames(line):
    with pytest.raises(ProtocolError):
        decode_frame(line)


def test_decode_rejects_oversized_frames():
    with pytest.raises(ProtocolError):
        decode_frame(b"x" * (MAX_FRAME_BYTES + 1))


def test_result_and_error_frames():
    assert result_frame(3, {"pong": True}) == {
        "id": 3,
        "ok": True,
        "result": {"pong": True},
    }
    frame = error_frame("abc", ProtocolError("bad"))
    assert frame == {
        "id": "abc",
        "ok": False,
        "error": {"type": "ProtocolError", "message": "bad"},
    }


# -------------------------------------------------------------------- server


def _registry():
    registry = TenantRegistry(window=0.02)
    workload = build_workload(WorkloadSpec(users=80, seed=5))
    session = registry.create("t0", workload.graph)
    install_policies(session.service, workload)
    return registry, workload


async def _request_all(host, port, frames, extra_lines=()):
    reader, writer = await asyncio.open_connection(host, port)
    for frame in frames:
        writer.write((json.dumps(frame) + "\n").encode())
    for line in extra_lines:
        writer.write(line)
    await writer.drain()
    responses = {}
    for _ in range(len(frames) + len(extra_lines)):
        line = await asyncio.wait_for(reader.readline(), 10)
        response = json.loads(line)
        responses[response["id"]] = response
    writer.close()
    return responses


def test_server_end_to_end():
    registry, workload = _registry()
    users = sorted(workload.graph.users())
    requester, resource_id = workload.requests[0]

    async def main():
        server = ServingServer(registry)
        host, port = await server.start()
        frames = [
            {"id": 0, "op": "ping"},
            {
                "id": 1,
                "op": "reach",
                "tenant": "t0",
                "source": users[0],
                "target": users[1],
                "expression": "friend+[1,2]",
            },
            {
                "id": 2,
                "op": "audience",
                "tenant": "t0",
                "owner": users[0],
                "expression": "friend+[1]",
            },
            {
                "id": 3,
                "op": "check",
                "tenant": "t0",
                "requester": requester,
                "resource": resource_id,
            },
            {"id": 4, "op": "stats", "tenant": "t0"},
            {"id": 5, "op": "stats"},
            {"id": 6, "op": "check", "tenant": "ghost", "requester": "x", "resource": "y"},
            {"id": 7, "op": "frobnicate"},
            {"id": 8, "op": "reach", "tenant": "t0", "source": users[0]},
        ]
        responses = await _request_all(
            host, port, frames, extra_lines=[b"definitely not json\n"]
        )
        await server.stop()
        return responses

    responses = asyncio.run(main())
    assert responses[0]["result"] == {"pong": True}
    assert isinstance(responses[1]["result"]["reachable"], bool)
    assert isinstance(responses[2]["result"]["audience"], list)
    assert responses[2]["result"]["audience"] == sorted(
        responses[2]["result"]["audience"]
    )
    assert isinstance(responses[3]["result"]["granted"], bool)
    assert responses[4]["result"]["statistics"]["coalescer_requests_submitted"] >= 3
    assert "_totals" in responses[5]["result"]["statistics"]
    assert responses[6] == {
        "id": 6,
        "ok": False,
        "error": {
            "type": "UnknownTenantError",
            "message": responses[6]["error"]["message"],
        },
    }
    assert responses[7]["error"]["type"] == "ProtocolError"
    assert responses[8]["error"]["type"] == "ProtocolError"
    assert "source" not in responses[8]["error"]["message"]
    assert "target" in responses[8]["error"]["message"]
    assert responses[None]["error"]["type"] == "ProtocolError"


def test_server_coalesces_concurrent_frames_on_one_connection():
    registry, workload = _registry()
    users = sorted(workload.graph.users())

    async def main():
        server = ServingServer(registry)
        host, port = await server.start()
        frames = [
            {
                "id": i,
                "op": "reach",
                "tenant": "t0",
                "source": users[i],
                "target": users[(i + 7) % 16],
                "expression": "friend+[1,2]",
            }
            for i in range(16)
        ]
        responses = await _request_all(host, port, frames)
        await server.stop()
        return responses

    responses = asyncio.run(main())
    batch_sizes = [responses[i]["result"]["batch_size"] for i in range(16)]
    assert max(batch_sizes) >= 2
    assert any(responses[i]["result"]["coalesced"] for i in range(16))


def test_server_request_id_echo_allows_out_of_order():
    registry, _workload = _registry()

    async def main():
        server = ServingServer(registry)
        host, port = await server.start()
        frames = [{"id": f"req-{i}", "op": "ping"} for i in range(5)]
        responses = await _request_all(host, port, frames)
        await server.stop()
        return responses

    responses = asyncio.run(main())
    assert set(responses) == {f"req-{i}" for i in range(5)}
    assert all(response["ok"] for response in responses.values())
