"""Tenant registry: routing, isolation, aggregate statistics."""

import asyncio

import pytest

from repro.exceptions import UnknownTenantError
from repro.graph.social_graph import SocialGraph
from repro.serving.client import AsyncGraphClient
from repro.serving.session import TenantRegistry


def _chain_graph(names):
    graph = SocialGraph()
    for name in names:
        graph.add_user(name)
    for left, right in zip(names, names[1:]):
        graph.add_relationship(left, right, "friend")
    return graph


def test_get_unknown_tenant_raises_typed_error():
    registry = TenantRegistry()
    registry.create("alpha", _chain_graph(["a", "b"]))
    with pytest.raises(UnknownTenantError) as excinfo:
        registry.get("beta")
    assert "alpha" in str(excinfo.value)
    assert "alpha" in registry and "beta" not in registry
    assert registry.tenants == ("alpha",)


def test_duplicate_tenant_rejected():
    registry = TenantRegistry()
    registry.create("alpha", _chain_graph(["a", "b"]))
    with pytest.raises(ValueError):
        registry.create("alpha", _chain_graph(["c", "d"]))


def test_create_needs_graph_or_service():
    with pytest.raises(ValueError):
        TenantRegistry().create("alpha")


def test_registry_sessions_get_a_guard_by_default():
    registry = TenantRegistry()
    session = registry.create("alpha", _chain_graph(["a", "b"]))
    assert session.service.query_guard is not None


def test_tenant_isolation_mutation_and_counters():
    """Mutating tenant A's graph must not change tenant B's answers, and
    per-tenant counters must not bleed."""
    registry = TenantRegistry(window=0.01)
    registry.create("a", _chain_graph(["u1", "u2", "u3"]))
    registry.create("b", _chain_graph(["u1", "u2", "u3"]))
    client_a = AsyncGraphClient(registry, "a")
    client_b = AsyncGraphClient(registry, "b")

    async def main():
        assert (await client_a.reach("u1", "u3", "friend+[1]")).reachable is False
        assert (await client_b.reach("u1", "u3", "friend+[1]")).reachable is False
        # Tenant A grows a direct edge; tenant B's graph is untouched.
        registry.get("a").service.graph.add_relationship("u1", "u3", "friend")
        after_a = await client_a.reach("u1", "u3", "friend+[1]")
        after_b = await client_b.reach("u1", "u3", "friend+[1]")
        assert after_a.reachable is True
        assert after_b.reachable is False
        stats_a = await client_a.statistics()
        stats_b = await client_b.statistics()
        # A answered one more query than B; counters are per tenant.
        assert stats_a["coalescer_requests_submitted"] == 2.0
        assert stats_b["coalescer_requests_submitted"] == 2.0
        assert stats_a["queries_executed"] != 0.0
        await registry.close()

    asyncio.run(main())


def test_serving_statistics_aggregates_and_totals():
    registry = TenantRegistry(window=0.01)
    registry.create("a", _chain_graph(["u1", "u2"]))
    registry.create("b", _chain_graph(["u1", "u2"]))

    async def main():
        client = AsyncGraphClient(registry, "a")
        await client.reach("u1", "u2", "friend+[1]")
        aggregate = await registry.serving_statistics()
        assert set(aggregate) == {"a", "b", "_totals"}
        assert aggregate["a"]["admission_admitted"] == 1.0
        assert aggregate["b"]["admission_admitted"] == 0.0
        assert aggregate["_totals"]["admission_admitted"] == 1.0
        await registry.close()

    asyncio.run(main())


def test_remove_tenant_closes_its_session():
    registry = TenantRegistry()

    async def main():
        session = registry.create("a", _chain_graph(["u1", "u2"]))
        await registry.remove("a")
        assert "a" not in registry
        with pytest.raises(RuntimeError):
            await session.reach("u1", "u2", "friend+[1]")

    asyncio.run(main())


def test_client_for_session_binds_single_tenant():
    registry = TenantRegistry(window=0.01)
    session = registry.create("solo", _chain_graph(["u1", "u2"]))
    client = AsyncGraphClient.for_session(session)

    async def main():
        assert (await client.is_reachable("u1", "u2", "friend+[1]")) is True
        assert (await client.is_reachable("u2", "u1", "friend+[1]")) is False
        await registry.close()

    asyncio.run(main())
