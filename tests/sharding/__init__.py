"""Tests for the community-partitioned sharding layer."""
