"""Multi-process shard serving: N workers must equal one process.

A :class:`~repro.sharding.ShardedGraph` is persisted shard-by-shard through
:class:`~repro.graph.snapshot.SnapshotStore`, then a
:class:`~repro.sharding.ShardServingPool` forks (and separately spawns) one
worker per shard.  The pool's joint bulk-audience answer must equal the
single-process :func:`~repro.reachability.compiled_search.audience_sweep`
over the unsharded compiled graph, and every worker must report that its
snapshot is served zero-copy (``snapshot.mapped`` — the mmap, not a heap
deserialization).
"""

from __future__ import annotations

import multiprocessing
import random

import pytest

from repro.graph.compiled import compile_graph
from repro.graph.generators import community_graph
from repro.policy.path_expression import PathExpression
from repro.reachability.compiled_search import CompiledAutomaton, audience_sweep
from repro.sharding import ShardServingPool, ShardedGraph

EXPRESSIONS = (
    "friend+[1,2]",
    "friend+[1]/colleague+[1]",
    "colleague+[1,3]{age >= 18}",
)
START_METHODS = [
    method
    for method in ("fork", "spawn")
    if method in multiprocessing.get_all_start_methods()
]


@pytest.fixture(scope="module")
def serving_setup(tmp_path_factory):
    """One persisted 3-shard graph shared by the whole matrix."""
    graph = community_graph(
        90, communities=3, intra_edges_per_node=3, inter_fraction=0.1, seed=4
    )
    sharded = ShardedGraph(graph, shards=3, seed=11)
    directory = tmp_path_factory.mktemp("shards")
    sharded.save(directory)
    snapshot = compile_graph(graph)
    return graph, sharded, directory, snapshot


def reference_audiences(snapshot, expression_text, owners):
    automaton = CompiledAutomaton(
        PathExpression.parse(expression_text), snapshot
    )
    sources = [snapshot.index_of(owner) for owner in owners]
    audiences = audience_sweep(snapshot, automaton, sources)
    return [
        {snapshot.node_ids[node] for node in audience}
        for audience in audiences
    ]


@pytest.mark.parametrize("start_method", START_METHODS)
def test_pool_matches_single_process(serving_setup, start_method):
    graph, sharded, directory, snapshot = serving_setup
    rng = random.Random(61)
    users = sorted(graph.users(), key=str)
    # Owners from every shard plus boundary stragglers, to force real rounds.
    owners = list(sharded.boundary_users()[:3])
    owners.extend(rng.sample(users, 9))
    owners = list(dict.fromkeys(owners))
    with ShardServingPool(directory, start_method=start_method) as pool:
        assert pool.shard_count == 3
        for info in pool.worker_info:
            assert info["mapped"] is True  # zero-copy: mmapped, not unpickled
            assert info["nodes"] > 0
        for text in EXPRESSIONS:
            got = pool.bulk_audience(owners, text)
            want = reference_audiences(snapshot, text, owners)
            for owner, audience in zip(owners, want):
                assert got[owner] == audience, (start_method, text, owner)
        assert pool.rounds >= len(EXPRESSIONS)  # at least one round per query
        assert pool.messages > 0  # the cut is real: cross-shard traffic flowed


@pytest.mark.parametrize("start_method", START_METHODS)
def test_pool_routing_matches_partition(serving_setup, start_method):
    graph, sharded, directory, _snapshot = serving_setup
    with ShardServingPool(directory, start_method=start_method) as pool:
        for user in sorted(graph.users(), key=str)[:20]:
            assert pool.home_of(user) == sharded.shard_of(user)
        # Worker ghost counts line up with the persisted boundary set.
        assert sum(info["ghosts"] for info in pool.worker_info) >= len(
            sharded.boundary_users()
        )


def test_pool_close_is_idempotent(serving_setup):
    _graph, _sharded, directory, _snapshot = serving_setup
    pool = ShardServingPool(directory)
    assert pool.bulk_audience(["u0"], "friend+[1]")
    pool.close()
    pool.close()
    assert pool.workers == [] and pool.conns == []


def test_start_method_matrix_covers_fork_and_spawn():
    """The acceptance matrix: both start methods exercised when available."""
    assert "fork" in START_METHODS or "spawn" in START_METHODS
    assert START_METHODS == [
        m
        for m in ("fork", "spawn")
        if m in multiprocessing.get_all_start_methods()
    ]
