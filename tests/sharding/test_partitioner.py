"""Partitioner properties: deterministic, total, community-respecting."""

from __future__ import annotations

from repro.graph.compiled import compile_graph
from repro.graph.generators import community_graph
from repro.sharding import CommunityPartitioner


def test_partition_is_deterministic_and_total():
    graph = community_graph(80, communities=4, seed=9)
    snapshot = compile_graph(graph)
    first = CommunityPartitioner(4, seed=7).partition(snapshot)
    second = CommunityPartitioner(4, seed=7).partition(snapshot)
    assert first.shard_of == second.shard_of
    assert first.community_of == second.community_of
    assert set(first.shard_of) == set(graph.users())
    assert set(first.shard_of.values()) <= set(range(4))


def test_communities_stay_whole():
    """Label propagation assigns one shard per community, never splitting."""
    graph = community_graph(
        60, communities=3, intra_edges_per_node=4, inter_fraction=0.02, seed=2
    )
    snapshot = compile_graph(graph)
    partition = CommunityPartitioner(2, seed=7).partition(snapshot)
    shard_by_community = {}
    for user, community in partition.community_of.items():
        shard_by_community.setdefault(community, partition.shard_of[user])
        assert shard_by_community[community] == partition.shard_of[user]


def test_packing_is_balanced_with_many_communities():
    graph = community_graph(120, communities=12, inter_fraction=0.05, seed=5)
    snapshot = compile_graph(graph)
    partition = CommunityPartitioner(4, seed=7).partition(snapshot)
    sizes = partition.shard_sizes()
    assert len(sizes) == 4
    assert min(sizes) > 0
    # LPT packing over many similar communities stays within a factor of ~2.
    assert max(sizes) <= 2 * min(sizes)
    assert sorted(
        user
        for shard in range(4)
        for user in partition.members(shard)
    ) == sorted(partition.shard_of)


def test_shard_count_one_collapses_to_a_single_shard():
    graph = community_graph(30, communities=3, seed=1)
    partition = CommunityPartitioner(1).partition(compile_graph(graph))
    assert set(partition.shard_of.values()) == {0}
