"""Unit tests for the B+-tree backing the cluster join index."""

from __future__ import annotations

import random

import pytest

from repro.storage.btree import BPlusTree


class TestBasics:
    def test_insert_and_get(self):
        tree = BPlusTree(order=4)
        tree.insert("b", 2)
        tree.insert("a", 1)
        tree.insert("c", 3)
        assert tree.get("a") == 1
        assert tree.get("b") == 2
        assert tree["c"] == 3
        assert len(tree) == 3

    def test_missing_key(self):
        tree = BPlusTree(order=4)
        assert tree.get("missing") is None
        assert tree.get("missing", 42) == 42
        with pytest.raises(KeyError):
            tree["missing"]

    def test_contains_and_bool(self):
        tree = BPlusTree(order=4)
        assert not tree
        tree["x"] = 1
        assert "x" in tree and "y" not in tree
        assert tree

    def test_update_existing_key(self):
        tree = BPlusTree(order=4)
        tree.insert("k", 1)
        tree.insert("k", 2)
        assert tree["k"] == 2
        assert len(tree) == 1

    def test_setitem_alias(self):
        tree = BPlusTree(order=4)
        tree["k"] = "v"
        assert tree["k"] == "v"

    def test_minimum_order_enforced(self):
        with pytest.raises(ValueError):
            BPlusTree(order=2)


class TestBulk:
    @pytest.mark.parametrize("order", [3, 4, 8, 32])
    def test_many_inserts_all_retrievable(self, order):
        tree = BPlusTree(order=order)
        keys = list(range(500))
        random.Random(7).shuffle(keys)
        for key in keys:
            tree.insert(key, key * 10)
        assert len(tree) == 500
        for key in range(500):
            assert tree[key] == key * 10

    def test_items_sorted(self):
        tree = BPlusTree(order=4)
        keys = list(range(200))
        random.Random(3).shuffle(keys)
        for key in keys:
            tree.insert(key, -key)
        assert [key for key, _ in tree.items()] == sorted(range(200))
        assert list(tree.keys()) == sorted(range(200))
        assert list(tree.values()) == [-key for key in sorted(range(200))]

    def test_height_grows_logarithmically(self):
        tree = BPlusTree(order=4)
        for key in range(1000):
            tree.insert(key, key)
        assert tree.height <= 8
        internal, leaves = tree.node_count()
        assert internal >= 1 and leaves >= 250


class TestRange:
    @pytest.fixture
    def tree(self):
        tree = BPlusTree(order=4)
        for key in range(0, 100, 2):  # even keys only
            tree.insert(key, str(key))
        return tree

    def test_closed_range(self, tree):
        assert [key for key, _ in tree.range(10, 20)] == [10, 12, 14, 16, 18, 20]

    def test_range_bounds_not_present(self, tree):
        assert [key for key, _ in tree.range(9, 15)] == [10, 12, 14]

    def test_open_low(self, tree):
        assert [key for key, _ in tree.range(None, 6)] == [0, 2, 4, 6]

    def test_open_high(self, tree):
        assert [key for key, _ in tree.range(94)] == [94, 96, 98]

    def test_full_range(self, tree):
        assert len(list(tree.range())) == 50

    def test_empty_range(self, tree):
        assert list(tree.range(51, 51)) == []


class TestDelete:
    def test_delete_existing(self):
        tree = BPlusTree(order=4)
        for key in range(50):
            tree.insert(key, key)
        assert tree.delete(25)
        assert 25 not in tree
        assert len(tree) == 49
        # Remaining keys still retrievable and ordered.
        assert list(tree.keys()) == [key for key in range(50) if key != 25]

    def test_delete_missing_returns_false(self):
        tree = BPlusTree(order=4)
        tree.insert(1, 1)
        assert not tree.delete(2)
        assert len(tree) == 1

    def test_delete_then_reinsert(self):
        tree = BPlusTree(order=4)
        for key in range(20):
            tree.insert(key, key)
        tree.delete(10)
        tree.insert(10, "back")
        assert tree[10] == "back"


class TestAgainstDictModel:
    def test_random_operations_match_dict(self):
        rng = random.Random(99)
        tree = BPlusTree(order=5)
        model = {}
        for _ in range(2000):
            key = rng.randint(0, 300)
            action = rng.random()
            if action < 0.6:
                value = rng.randint(0, 10**6)
                tree.insert(key, value)
                model[key] = value
            elif action < 0.8:
                assert tree.get(key) == model.get(key)
            else:
                assert tree.delete(key) == (key in model)
                model.pop(key, None)
        assert len(tree) == len(model)
        assert dict(tree.items()) == model
        assert list(tree.keys()) == sorted(model)
