"""Unit tests for the table catalog."""

from __future__ import annotations

import pytest

from repro.exceptions import StorageError, TableNotFoundError
from repro.storage.catalog import Catalog
from repro.storage.table import Column, Schema, Table


@pytest.fixture
def schema():
    return Schema([Column("node", str), Column("value", int, nullable=True)])


class TestCatalog:
    def test_create_and_lookup(self, schema):
        catalog = Catalog("test")
        table = catalog.create_table("T_friend", schema, key="node")
        assert catalog.table("T_friend") is table
        assert catalog.has_table("T_friend")
        assert "T_friend" in catalog

    def test_duplicate_creation_rejected(self, schema):
        catalog = Catalog()
        catalog.create_table("T", schema)
        with pytest.raises(StorageError):
            catalog.create_table("T", schema)

    def test_register_existing_table(self, schema):
        catalog = Catalog()
        table = Table("external", schema)
        catalog.register(table)
        assert catalog.table("external") is table
        with pytest.raises(StorageError):
            catalog.register(table)

    def test_missing_table_raises(self):
        catalog = Catalog()
        with pytest.raises(TableNotFoundError):
            catalog.table("nope")

    def test_drop_table(self, schema):
        catalog = Catalog()
        catalog.create_table("T", schema)
        catalog.drop_table("T")
        assert not catalog.has_table("T")
        with pytest.raises(TableNotFoundError):
            catalog.drop_table("T")

    def test_table_names_sorted(self, schema):
        catalog = Catalog()
        for name in ("T_parent", "T_colleague", "T_friend"):
            catalog.create_table(name, schema)
        assert catalog.table_names() == ["T_colleague", "T_friend", "T_parent"]
        assert len(catalog) == 3

    def test_total_rows_and_statistics(self, schema):
        catalog = Catalog()
        first = catalog.create_table("A", schema, key="node")
        second = catalog.create_table("B", schema, key="node")
        first.insert(node="x", value=1)
        first.insert(node="y", value=2)
        second.insert(node="z", value=None)
        assert catalog.total_rows() == 3
        stats = catalog.statistics()
        assert stats["A"] == (2, ("node", "value"))
        assert stats["B"] == (1, ("node", "value"))

    def test_iteration(self, schema):
        catalog = Catalog()
        catalog.create_table("A", schema)
        catalog.create_table("B", schema)
        assert {table.name for table in catalog} == {"A", "B"}
