"""Unit tests for the join operators, including the reachability join."""

from __future__ import annotations

import pytest

from repro.storage.joins import (
    hash_join,
    nested_loop_join,
    reachability_join,
    reachability_join_rows,
)
from repro.storage.table import Column, Schema, Table


@pytest.fixture
def employees():
    return [
        {"name": "alice", "dept": 1},
        {"name": "bob", "dept": 2},
        {"name": "carol", "dept": 1},
    ]


@pytest.fixture
def departments():
    return [
        {"dept": 1, "label": "research"},
        {"dept": 2, "label": "sales"},
        {"dept": 3, "label": "legal"},
    ]


class TestEqualityJoins:
    def test_hash_join_basic(self, employees, departments):
        joined = hash_join(employees, departments, "dept", "dept")
        assert len(joined) == 3
        labels = {(row["name"], row["label"]) for row in joined}
        assert labels == {("alice", "research"), ("carol", "research"), ("bob", "sales")}

    def test_hash_join_prefixes_colliding_columns(self, employees, departments):
        joined = hash_join(employees, departments, "dept", "dept")
        assert all("right_dept" in row for row in joined)

    def test_hash_join_no_matches(self, employees):
        assert hash_join(employees, [{"dept": 9, "label": "x"}], "dept", "dept") == []

    def test_nested_loop_matches_hash_join(self, employees, departments):
        by_hash = hash_join(employees, departments, "dept", "dept")
        by_loop = nested_loop_join(
            employees, departments, lambda left, right: left["dept"] == right["dept"]
        )
        key = lambda row: (row["name"], row["label"])  # noqa: E731
        assert sorted(map(key, by_hash)) == sorted(map(key, by_loop))

    def test_nested_loop_theta_join(self, employees, departments):
        joined = nested_loop_join(
            employees, departments, lambda left, right: left["dept"] < right["dept"]
        )
        assert {(row["name"], row["label"]) for row in joined} == {
            ("alice", "sales"),
            ("alice", "legal"),
            ("carol", "sales"),
            ("carol", "legal"),
            ("bob", "legal"),
        }


class TestReachabilityJoin:
    def _rows(self, entries):
        return [
            {"node": node, "lin": frozenset(lin), "lout": frozenset(lout)}
            for node, lin, lout in entries
        ]

    def test_pairs_require_center_intersection(self):
        left = self._rows([("x1", [], ["w1"]), ("x2", [], ["w2"])])
        right = self._rows([("y1", ["w1"], []), ("y2", ["w3"], [])])
        assert reachability_join_rows(left, right) == [("x1", "y1")]

    def test_multiple_shared_centers_deduplicated(self):
        left = self._rows([("x", [], ["w1", "w2"])])
        right = self._rows([("y", ["w1", "w2"], [])])
        assert reachability_join_rows(left, right) == [("x", "y")]

    def test_empty_labels_join_to_nothing(self):
        left = self._rows([("x", [], [])])
        right = self._rows([("y", [], [])])
        assert reachability_join_rows(left, right) == []

    def test_result_is_sorted(self):
        left = self._rows([("b", [], ["w"]), ("a", [], ["w"])])
        right = self._rows([("z", ["w"], []), ("y", ["w"], [])])
        assert reachability_join_rows(left, right) == [
            ("a", "y"),
            ("a", "z"),
            ("b", "y"),
            ("b", "z"),
        ]

    def test_join_over_tables(self):
        schema = Schema([Column("node", str), Column("lin", frozenset), Column("lout", frozenset)])
        left = Table("T_friend", schema, key="node")
        right = Table("T_colleague", schema, key="node")
        left.insert(node="friend:a->b", lin=frozenset(), lout=frozenset({"c1"}))
        right.insert(node="colleague:b->c", lin=frozenset({"c1"}), lout=frozenset())
        right.insert(node="colleague:x->y", lin=frozenset({"other"}), lout=frozenset())
        assert reachability_join(left, right) == [("friend:a->b", "colleague:b->c")]
