"""Unit tests for the relational Table substrate."""

from __future__ import annotations

import pytest

from repro.exceptions import DuplicateKeyError, SchemaError
from repro.storage.table import Column, Row, Schema, Table


@pytest.fixture
def people():
    schema = Schema([Column("name", str), Column("age", int), Column("city", str, nullable=True)])
    table = Table("people", schema, key="name")
    table.insert(name="alice", age=24, city="paris")
    table.insert(name="bob", age=31, city=None)
    table.insert(name="carol", age=24, city="berlin")
    return table


class TestSchema:
    def test_column_names_in_order(self):
        schema = Schema([Column("a"), Column("b")])
        assert schema.column_names == ("a", "b")
        assert len(schema) == 2
        assert "a" in schema and "z" not in schema

    def test_empty_schema_rejected(self):
        with pytest.raises(SchemaError):
            Schema([])

    def test_duplicate_column_names_rejected(self):
        with pytest.raises(SchemaError):
            Schema([Column("x"), Column("x")])

    def test_unknown_column_lookup_raises(self):
        schema = Schema([Column("a")])
        with pytest.raises(SchemaError):
            schema.column("missing")

    def test_validate_row_rejects_unknown_columns(self):
        schema = Schema([Column("a")])
        with pytest.raises(SchemaError):
            schema.validate_row({"a": 1, "zzz": 2})

    def test_type_enforcement(self):
        schema = Schema([Column("n", int)])
        with pytest.raises(SchemaError):
            schema.validate_row({"n": "not an int"})

    def test_nullability(self):
        schema = Schema([Column("n", int, nullable=True), Column("m", int)])
        assert schema.validate_row({"n": None, "m": 3}) == {"n": None, "m": 3}
        with pytest.raises(SchemaError):
            schema.validate_row({"m": None})

    def test_untyped_column_accepts_anything(self):
        schema = Schema([Column("x")])
        assert schema.validate_row({"x": object()})["x"] is not None


class TestRow:
    def test_mapping_interface(self):
        row = Row({"a": 1, "b": 2})
        assert row["a"] == 1
        assert dict(row) == {"a": 1, "b": 2}
        assert len(row) == 2

    def test_equality_with_dict_and_row(self):
        assert Row({"a": 1}) == Row({"a": 1})
        assert Row({"a": 1}) == {"a": 1}
        assert Row({"a": 1}) != Row({"a": 2})

    def test_hashable_even_with_collection_values(self):
        row = Row({"a": frozenset({"x"}), "b": (1, 2)})
        assert isinstance(hash(row), int)


class TestTable:
    def test_insert_and_len(self, people):
        assert len(people) == 3

    def test_primary_key_lookup(self, people):
        assert people.get("bob")["age"] == 31
        assert people.get("nobody") is None

    def test_duplicate_key_rejected(self, people):
        with pytest.raises(DuplicateKeyError):
            people.insert(name="alice", age=99)

    def test_key_lookup_without_key_column_raises(self):
        table = Table("t", Schema([Column("x", int)]))
        table.insert(x=1)
        with pytest.raises(SchemaError):
            table.get(1)

    def test_key_column_must_be_in_schema(self):
        with pytest.raises(SchemaError):
            Table("t", Schema([Column("x")]), key="nope")

    def test_select_equality(self, people):
        rows = people.select(age=24)
        assert {row["name"] for row in rows} == {"alice", "carol"}

    def test_select_with_predicate(self, people):
        rows = people.select(lambda row: row["age"] > 25)
        assert [row["name"] for row in rows] == ["bob"]

    def test_select_combined(self, people):
        rows = people.select(lambda row: row["city"] == "paris", age=24)
        assert [row["name"] for row in rows] == ["alice"]

    def test_select_uses_secondary_index(self, people):
        people.create_index("age")
        rows = people.select(age=24)
        assert {row["name"] for row in rows} == {"alice", "carol"}

    def test_secondary_index_updates_on_insert(self, people):
        people.create_index("age")
        people.insert(name="dave", age=24)
        assert {row["name"] for row in people.select(age=24)} == {"alice", "carol", "dave"}

    def test_project(self, people):
        assert set(people.project("name", "age")) == {("alice", 24), ("bob", 31), ("carol", 24)}

    def test_project_unknown_column_raises(self, people):
        with pytest.raises(SchemaError):
            people.project("salary")

    def test_distinct(self, people):
        assert sorted(people.distinct("age")) == [24, 31]

    def test_insert_many(self):
        table = Table("t", Schema([Column("x", int)]))
        assert table.insert_many([{"x": 1}, {"x": 2}, {"x": 3}]) == 3
        assert len(table) == 3

    def test_iteration_yields_rows_in_insert_order(self, people):
        assert [row["name"] for row in people] == ["alice", "bob", "carol"]

    def test_rows_returns_copy_of_list(self, people):
        rows = people.rows()
        rows.clear()
        assert len(people) == 3
