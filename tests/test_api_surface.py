"""The exported API surface is tested like code.

``tools/check_api.py`` (also run by the CI ``docs`` job) must pass against
the committed ``tools/api_surface.json`` snapshot, and its drift detection
must actually catch accidental breakage.
"""

from __future__ import annotations

import importlib.util
import json
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_check_api():
    spec = importlib.util.spec_from_file_location(
        "check_api", REPO / "tools" / "check_api.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_surface_matches_the_code():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_api.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "surface matches" in result.stdout


def test_snapshot_is_committed_and_meaningful():
    snapshot = json.loads((REPO / "tools" / "api_surface.json").read_text("utf-8"))
    assert "GraphService" in snapshot["all"]
    assert "ReachQuery" in snapshot["all"]
    assert "reach" in snapshot["graph_service_methods"]
    assert "bulk_access" in snapshot["graph_service_methods"]
    assert "ExecutionPlan" in snapshot["dataclasses"]


def test_surface_drift_is_detected(tmp_path):
    """A snapshot that disagrees with the code must fail the check."""
    module = _load_check_api()
    surface = module.build_surface()
    surface["all"] = [name for name in surface["all"] if name != "GraphService"]
    fake = tmp_path / "api_surface.json"
    fake.write_text(module.render(surface), encoding="utf-8")
    module.SNAPSHOT = fake
    assert module.main([]) == 1


def test_update_mode_rewrites_the_snapshot(tmp_path):
    module = _load_check_api()
    module.SNAPSHOT = tmp_path / "api_surface.json"
    assert module.main(["--update"]) == 0
    assert module.main([]) == 0  # freshly recorded: the check passes


def test_signatures_omit_default_values():
    """Defaults are recorded as booleans, not reprs (stable across versions)."""
    module = _load_check_api()
    surface = module.build_surface()
    for rows in surface["graph_service_methods"].values():
        for row in rows:
            assert set(row) == {"name", "kind", "has_default"}
            assert isinstance(row["has_default"], bool)
