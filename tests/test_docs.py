"""The documentation layer is tested like code.

``tools/check_docs.py`` (also run by the CI ``docs`` job) must pass against
the committed README/docs, and its two checks — relative links resolve,
embedded python snippets compile — must actually catch regressions.
"""

from __future__ import annotations

import importlib.util
import subprocess
import sys
from pathlib import Path

REPO = Path(__file__).resolve().parent.parent


def _load_check_docs():
    spec = importlib.util.spec_from_file_location(
        "check_docs", REPO / "tools" / "check_docs.py"
    )
    module = importlib.util.module_from_spec(spec)
    spec.loader.exec_module(module)
    return module


def test_committed_documentation_passes():
    result = subprocess.run(
        [sys.executable, str(REPO / "tools" / "check_docs.py")],
        capture_output=True,
        text=True,
    )
    assert result.returncode == 0, result.stdout + result.stderr
    assert "0 failure(s)" in result.stdout


def test_readme_and_docs_exist():
    assert (REPO / "README.md").is_file()
    assert (REPO / "docs" / "architecture.md").is_file()
    assert (REPO / "docs" / "benchmarks.md").is_file()


def test_broken_links_are_detected(tmp_path):
    module = _load_check_docs()
    module.REPO = tmp_path
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "[good](docs/real.md) and [bad](docs/missing.md)\n", encoding="utf-8"
    )
    (tmp_path / "docs" / "real.md").write_text("ok\n", encoding="utf-8")
    failures = module.check_links(module.documentation_files())
    assert len(failures) == 1 and "missing.md" in failures[0]


def test_snippets_are_extracted_and_syntax_checked(tmp_path):
    module = _load_check_docs()
    module.REPO = tmp_path
    (tmp_path / "docs").mkdir()
    (tmp_path / "README.md").write_text(
        "```python\ndef fine():\n    return 1\n```\n"
        "```bash\nnot python, ignored\n```\n"
        "```python\ndef broken(:\n```\n",
        encoding="utf-8",
    )
    out = tmp_path / "snippets"
    out.mkdir()
    count = module.extract_snippets(module.documentation_files(), out)
    assert count == 2  # the bash block is skipped
    import compileall

    assert not compileall.compile_dir(str(out), quiet=2)  # the broken one fails
