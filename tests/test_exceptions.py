"""Unit tests for the exception hierarchy and the top-level package surface."""

from __future__ import annotations

import pytest

import repro
from repro import exceptions


class TestHierarchy:
    def test_every_library_error_derives_from_repro_error(self):
        for name in dir(exceptions):
            obj = getattr(exceptions, name)
            if isinstance(obj, type) and issubclass(obj, Exception) and obj is not exceptions.ReproError:
                if obj.__module__ == "repro.exceptions":
                    assert issubclass(obj, exceptions.ReproError), name

    def test_subsystem_bases(self):
        assert issubclass(exceptions.NodeNotFoundError, exceptions.GraphError)
        assert issubclass(exceptions.PathExpressionSyntaxError, exceptions.PolicyError)
        assert issubclass(exceptions.UnknownBackendError, exceptions.ReachabilityError)
        assert issubclass(exceptions.DuplicateKeyError, exceptions.StorageError)

    def test_lookup_errors_are_also_key_errors(self):
        assert issubclass(exceptions.NodeNotFoundError, KeyError)
        assert issubclass(exceptions.ResourceNotFoundError, KeyError)
        assert issubclass(exceptions.TableNotFoundError, KeyError)

    def test_messages_are_readable(self):
        assert "alice" in str(exceptions.NodeNotFoundError("alice"))
        assert "friend" in str(exceptions.EdgeNotFoundError("a", "b", "friend"))
        assert "album" in str(exceptions.ResourceNotFoundError("album"))
        assert "r1" in str(exceptions.RuleNotFoundError("r1"))
        assert "T_x" in str(exceptions.TableNotFoundError("T_x"))

    def test_unknown_backend_lists_alternatives(self):
        error = exceptions.UnknownBackendError("oracle", available=["bfs", "dfs"])
        assert "oracle" in str(error) and "bfs" in str(error)

    def test_path_expression_error_carries_location(self):
        error = exceptions.PathExpressionSyntaxError("friend[", 7, "missing ]")
        assert error.position == 7
        assert error.expression == "friend["
        assert "missing ]" in str(error)


class TestPackageSurface:
    def test_version_is_exposed(self):
        assert repro.__version__

    def test_all_exports_resolve(self):
        for name in repro.__all__:
            assert hasattr(repro, name), name

    def test_quickstart_docstring_example_works(self):
        """The doctest embedded in the package docstring must stay true."""
        graph = repro.SocialGraph()
        for user in ("alice", "bob", "carol"):
            graph.add_user(user)
        graph.add_relationship("alice", "bob", "friend")
        graph.add_relationship("bob", "carol", "friend")
        store = repro.PolicyStore()
        store.share("alice", "holiday-album", kind="photos")
        store.allow("holiday-album", "friend+[1,2]")
        engine = repro.AccessControlEngine(graph, store)
        assert engine.is_allowed("carol", "holiday-album")

    def test_subpackage_all_exports_resolve(self):
        import repro.graph
        import repro.policy
        import repro.reachability
        import repro.storage
        import repro.workloads

        for module in (repro.graph, repro.policy, repro.reachability, repro.storage, repro.workloads):
            for name in module.__all__:
                assert hasattr(module, name), (module.__name__, name)
