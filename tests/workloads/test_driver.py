"""The service-driven workload replay driver."""

from __future__ import annotations

import pytest

from repro.service import GraphService
from repro.workloads.driver import install_policies, run_workload
from repro.workloads.generator import WorkloadSpec, build_workload


@pytest.fixture(scope="module")
def workload():
    return build_workload(
        WorkloadSpec(
            users=80, owners=4, rules_per_owner=1, requests=30, seed=17,
            audience_batches=2, audience_batch_size=3,
        )
    )


def test_install_policies_is_idempotent(workload):
    service = GraphService(workload.graph)
    install_policies(service, workload)
    before = (service.store.resource_count(), service.store.rule_count())
    install_policies(service, workload)
    assert (service.store.resource_count(), service.store.rule_count()) == before
    assert before[0] == len(workload.resources)


def test_replay_reports_the_stream(workload):
    service = GraphService(workload.graph)
    report = run_workload(service, workload)
    assert report.requests == len(workload.requests)
    assert 0 <= report.grants <= report.requests
    assert 0.0 <= report.grant_rate <= 1.0
    assert report.audience_batches == len(workload.audience_requests)
    assert report.audiences_materialized == sum(
        len(batch) for batch in workload.audience_requests
    )
    assert sum(report.backend_queries.values()) == (
        report.requests + report.audience_batches
    )
    assert set(report.seconds) == {"requests", "churn", "audiences"}
    assert report.total_seconds >= 0.0
    assert str(report.requests) in report.describe()


def test_replay_matches_a_pinned_reference(workload):
    auto = run_workload(GraphService(workload.graph.copy()), workload)
    pinned = run_workload(
        GraphService(workload.graph.copy(), default_backend="bfs"), workload
    )
    assert auto.grants == pinned.grants
    assert pinned.backend_queries == {
        "bfs": pinned.requests + pinned.audience_batches
    }


def test_churn_bursts_interleave_with_the_stream():
    workload = build_workload(
        WorkloadSpec(
            users=60, owners=3, requests=20, seed=23,
            churn_bursts=4, churn_burst_size=5,
        )
    )
    service = GraphService(workload.graph)
    epoch_before = workload.graph.epoch
    report = run_workload(service, workload)
    assert report.churn_ops == 4 * 5
    assert workload.graph.epoch == epoch_before + report.churn_ops
    # The service kept answering across the bursts.
    assert report.requests == 20

    # churn=False replays the stream against the mutated-up-to-date graph
    # without applying (already-applied) bursts again.
    quiet = run_workload(service, workload, churn=False)
    assert quiet.churn_ops == 0
