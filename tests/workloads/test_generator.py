"""Unit tests for workload generation."""

from __future__ import annotations

import pytest

from repro.workloads.generator import (
    GRAPH_FAMILIES,
    WorkloadSpec,
    apply_churn_op,
    build_graph,
    build_workload,
)


class TestWorkloadSpec:
    def test_defaults(self):
        spec = WorkloadSpec()
        assert spec.family in GRAPH_FAMILIES
        assert spec.users > 0
        assert spec.describe().startswith(spec.family)

    def test_describe_mentions_size_and_seed(self):
        spec = WorkloadSpec(family="erdos-renyi", users=123, seed=9)
        assert spec.describe() == "erdos-renyi-n123-s9"


class TestBuildGraph:
    @pytest.mark.parametrize("family", sorted(GRAPH_FAMILIES))
    def test_every_family_builds(self, family):
        spec = WorkloadSpec(family=family, users=50, seed=3)
        graph = build_graph(spec)
        assert graph.number_of_users() == 50

    def test_unknown_family_raises(self):
        with pytest.raises(ValueError):
            build_graph(WorkloadSpec(family="ring-of-fire"))

    def test_family_options_forwarded(self):
        spec = WorkloadSpec(
            family="erdos-renyi", users=30, seed=1, family_options=(("edge_probability", 0.0),)
        )
        assert build_graph(spec).number_of_relationships() == 0


class TestBuildWorkload:
    def test_workload_shape(self):
        spec = WorkloadSpec(users=80, owners=5, rules_per_owner=2, requests=40, seed=11)
        workload = build_workload(spec)
        assert workload.graph.number_of_users() == 80
        assert len(workload.resources) == 10
        assert len(workload.requests) == 40
        assert len(workload.owners()) == 5

    def test_requests_reference_existing_resources_and_users(self):
        workload = build_workload(WorkloadSpec(users=60, requests=30, seed=2))
        resource_ids = {resource_id for resource_id, _owner, _exprs in workload.resources}
        for requester, resource_id in workload.requests:
            assert workload.graph.has_user(requester)
            assert resource_id in resource_ids

    def test_resource_expressions_parse(self):
        from repro.policy import PathExpression

        workload = build_workload(WorkloadSpec(users=40, seed=4))
        for _resource_id, _owner, expressions in workload.resources:
            for text in expressions:
                PathExpression.parse(text)

    def test_deterministic_for_seed(self):
        first = build_workload(WorkloadSpec(users=50, seed=7))
        second = build_workload(WorkloadSpec(users=50, seed=7))
        assert first.resources == second.resources
        assert first.requests == second.requests
        assert first.graph == second.graph

    def test_owner_count_capped_by_population(self):
        workload = build_workload(WorkloadSpec(users=3, owners=10, seed=1))
        assert len(workload.owners()) == 3


class TestBulkAudienceScenario:
    def test_disabled_by_default(self):
        workload = build_workload(WorkloadSpec(users=40, seed=4))
        assert workload.audience_requests == []

    def test_batches_reference_existing_resources(self):
        spec = WorkloadSpec(
            users=60, owners=6, rules_per_owner=2, seed=8,
            audience_batches=5, audience_batch_size=4,
        )
        workload = build_workload(spec)
        assert len(workload.audience_requests) == 5
        resource_ids = {rid for rid, _owner, _exprs in workload.resources}
        for batch in workload.audience_requests:
            assert len(batch) == 4
            assert len(set(batch)) == 4  # sampled without replacement
            assert set(batch) <= resource_ids

    def test_batch_size_capped_by_resource_count(self):
        spec = WorkloadSpec(
            users=30, owners=2, rules_per_owner=1, seed=3,
            audience_batches=2, audience_batch_size=50,
        )
        workload = build_workload(spec)
        for batch in workload.audience_requests:
            assert len(batch) == len(workload.resources)

    def test_deterministic_for_seed(self):
        spec = WorkloadSpec(users=50, seed=7, audience_batches=3)
        assert (
            build_workload(spec).audience_requests
            == build_workload(spec).audience_requests
        )


class TestChurnScenario:
    def test_disabled_by_default(self):
        assert build_workload(WorkloadSpec(users=40, seed=4)).churn == []

    def test_bursts_have_the_requested_shape(self):
        spec = WorkloadSpec(users=60, seed=8, churn_bursts=5, churn_burst_size=12)
        workload = build_workload(spec)
        assert len(workload.churn) == 5
        for burst in workload.churn:
            assert len(burst) == 12

    def test_bursts_replay_cleanly_in_order(self):
        """Every removal names a live edge, every addition a missing triple."""
        spec = WorkloadSpec(
            users=50, seed=9, churn_bursts=4, churn_burst_size=16,
            churn_attribute_fraction=0.3,
        )
        workload = build_workload(spec)
        graph = workload.graph
        kinds = set()
        for burst in workload.churn:
            before = graph.epoch
            for op in burst:
                kinds.add(op[0])
                apply_churn_op(graph, op)  # raises if the simulation drifted
            assert graph.epoch == before + len(burst)
        assert kinds == {"add_edge", "remove_edge", "set_attribute"}

    def test_edge_churn_preserves_the_edge_count(self):
        spec = WorkloadSpec(
            users=50, seed=10, churn_bursts=3, churn_burst_size=20,
            churn_attribute_fraction=0.0,
        )
        workload = build_workload(spec)
        graph = workload.graph
        before = graph.number_of_relationships()
        for burst in workload.churn:
            for op in burst:
                apply_churn_op(graph, op)
        after = graph.number_of_relationships()
        assert abs(after - before) <= len(workload.churn)  # one straggler/burst

    def test_unknown_op_raises(self):
        workload = build_workload(WorkloadSpec(users=10, seed=1))
        with pytest.raises(ValueError):
            apply_churn_op(workload.graph, ("rename_user", "a", "b"))

    def test_deterministic_for_seed(self):
        spec = WorkloadSpec(users=40, seed=6, churn_bursts=3, churn_burst_size=8)
        assert build_workload(spec).churn == build_workload(spec).churn
