"""Unit tests for the measurement helpers."""

from __future__ import annotations

import time

import pytest

from repro.workloads.metrics import MetricSeries, Timer, format_table, measure, speedup


class TestTimer:
    def test_measures_elapsed_time(self):
        with Timer() as timer:
            time.sleep(0.01)
        assert timer.elapsed >= 0.005

    def test_reusable(self):
        timer = Timer()
        with timer:
            pass
        first = timer.elapsed
        with timer:
            time.sleep(0.005)
        assert timer.elapsed >= first


class TestMeasure:
    def test_returns_median_and_result(self):
        calls = []

        def work():
            calls.append(1)
            return "done"

        elapsed, result = measure(work, repeats=5)
        assert result == "done"
        assert elapsed >= 0
        assert len(calls) == 5

    def test_at_least_one_repeat(self):
        elapsed, result = measure(lambda: 42, repeats=0)
        assert result == 42


class TestSpeedup:
    def test_faster_candidate(self):
        assert speedup(2.0, 0.5) == pytest.approx(4.0)

    def test_zero_candidate_is_infinite(self):
        assert speedup(1.0, 0.0) == float("inf")


class TestMetricSeries:
    def test_add_and_columns(self):
        series = MetricSeries("latency", ["n", "seconds"])
        series.add(n=100, seconds=0.5)
        series.add(n=200, seconds=1.25)
        assert series.column("n") == [100, 200]
        assert series.column("missing") == [None, None]

    def test_to_table_contains_title_and_rows(self):
        series = MetricSeries("latency", ["n", "seconds"])
        series.add(n=100, seconds=0.5)
        text = series.to_table()
        assert "latency" in text
        assert "100" in text and "0.5" in text


class TestFormatTable:
    def test_alignment_and_header(self):
        text = format_table(["name", "value"], [{"name": "a", "value": 1}, {"name": "bbbb", "value": 22}])
        lines = text.splitlines()
        assert lines[0].startswith("name")
        assert set(lines[1]) <= {"-", "+"}
        assert len(lines) == 4

    def test_float_formatting(self):
        text = format_table(["x"], [{"x": 0.000001}, {"x": 123456.0}, {"x": 0.1234567}])
        assert "e-06" in text or "1.000e-06" in text
        assert "0.1235" in text

    def test_missing_cells_render_empty(self):
        text = format_table(["a", "b"], [{"a": 1}])
        assert text.splitlines()[-1].startswith("1")
