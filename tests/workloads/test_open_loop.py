"""The seeded open-loop Poisson arrival schedule."""

import pytest

from repro.workloads import open_loop_arrivals


def test_deterministic_for_a_seed():
    assert open_loop_arrivals(50, 100.0, seed=3) == open_loop_arrivals(
        50, 100.0, seed=3
    )
    assert open_loop_arrivals(50, 100.0, seed=3) != open_loop_arrivals(
        50, 100.0, seed=4
    )


def test_offsets_are_positive_and_strictly_increasing():
    offsets = open_loop_arrivals(200, 50.0, seed=7)
    assert len(offsets) == 200
    assert offsets[0] > 0.0
    assert all(a < b for a, b in zip(offsets, offsets[1:]))


def test_mean_interarrival_matches_rate():
    rate = 200.0
    offsets = open_loop_arrivals(5000, rate, seed=11)
    mean_gap = offsets[-1] / len(offsets)
    assert mean_gap == pytest.approx(1.0 / rate, rel=0.1)


def test_empty_schedule():
    assert open_loop_arrivals(0, 10.0) == []


@pytest.mark.parametrize("count,rate", [(-1, 10.0), (10, 0.0), (10, -5.0)])
def test_invalid_parameters(count, rate):
    with pytest.raises(ValueError):
        open_loop_arrivals(count, rate)
