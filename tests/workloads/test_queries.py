"""Unit tests for random query generation."""

from __future__ import annotations

import random

import pytest

from repro.policy.steps import Direction
from repro.workloads.queries import (
    expression_of_shape,
    random_expression,
    random_query_mix,
    random_step,
)

LABELS = ("friend", "colleague", "parent")


class TestRandomStep:
    def test_uses_given_labels(self, rng):
        for _ in range(50):
            step = random_step(rng, LABELS)
            assert step.label in LABELS
            assert 1 <= step.min_depth() <= step.max_depth() <= 3

    def test_condition_probability_zero_means_no_conditions(self, rng):
        assert all(not random_step(rng, LABELS, condition_probability=0.0).conditions for _ in range(30))

    def test_condition_probability_one_means_always_conditions(self, rng):
        assert all(random_step(rng, LABELS, condition_probability=1.0).conditions for _ in range(30))

    def test_direction_weights_respected(self, rng):
        directions = {
            random_step(rng, LABELS, directions=((Direction.INCOMING, 1.0),)).direction
            for _ in range(20)
        }
        assert directions == {Direction.INCOMING}


class TestRandomExpression:
    def test_step_count_bounds(self, rng):
        for _ in range(50):
            expression = random_expression(rng, LABELS, max_steps=4)
            assert 1 <= len(expression) <= 4

    def test_deterministic_given_same_rng_state(self):
        first = random_expression(random.Random(5), LABELS)
        second = random_expression(random.Random(5), LABELS)
        assert first == second

    def test_round_trips_through_parser(self, rng):
        from repro.policy import PathExpression

        for _ in range(30):
            expression = random_expression(rng, LABELS)
            assert PathExpression.parse(expression.to_text()) == expression


class TestExpressionOfShape:
    def test_shape_parameters(self):
        expression = expression_of_shape(LABELS, steps=4, depth_width=3)
        assert len(expression) == 4
        assert all(step.depths.minimum == 1 and step.depths.maximum == 3 for step in expression)
        assert expression.labels() == ("friend", "colleague", "parent", "friend")

    def test_depth_width_clamped_to_one(self):
        expression = expression_of_shape(LABELS, steps=1, depth_width=0)
        assert expression[0].depths.maximum == 1

    def test_direction_applied(self):
        expression = expression_of_shape(LABELS, steps=2, depth_width=1, direction=Direction.ANY)
        assert all(step.direction is Direction.ANY for step in expression)


class TestRandomQueryMix:
    def test_mix_over_figure1(self, figure1):
        mix = random_query_mix(figure1, 25, seed=3)
        assert len(mix) == 25
        for source, target, expression in mix:
            assert figure1.has_user(source) and figure1.has_user(target)
            assert source != target
            assert len(expression) >= 1

    def test_deterministic(self, figure1):
        assert [
            (s, t, e.to_text()) for s, t, e in random_query_mix(figure1, 10, seed=8)
        ] == [(s, t, e.to_text()) for s, t, e in random_query_mix(figure1, 10, seed=8)]

    def test_too_small_graph_returns_empty(self, empty_graph):
        assert random_query_mix(empty_graph, 5) == []
