"""Unit tests for the named access-control scenarios."""

from __future__ import annotations

import pytest

from repro.policy import PathExpression
from repro.workloads.scenarios import SCENARIOS, scenario, scenario_names


class TestScenarioCatalogue:
    def test_at_least_the_paper_scenarios_exist(self):
        names = scenario_names()
        assert "q1-colleagues-of-friends" in names
        assert "friends-of-friends-parents" in names
        assert "family-and-friends" in names
        assert "who-call-me-friend" in names
        assert len(names) >= 8

    def test_lookup_by_name(self):
        item = scenario("q1-colleagues-of-friends")
        assert item.expressions == ("friend+[1,2]/colleague+[1]",)
        assert "Q1" in item.description or "colleagues" in item.description

    def test_unknown_scenario_raises(self):
        with pytest.raises(KeyError):
            scenario("does-not-exist")

    def test_every_expression_parses(self):
        for item in SCENARIOS.values():
            for text in item.expressions:
                PathExpression.parse(text)

    def test_every_scenario_has_description_and_source(self):
        for item in SCENARIOS.values():
            assert item.description
            assert item.source
            assert item.describe().startswith(item.name)

    def test_names_are_sorted_and_unique(self):
        names = scenario_names()
        assert names == sorted(names)
        assert len(names) == len(set(names))


class TestScenariosOverThePaperGraph:
    def test_q1_scenario_reproduces_figure2(self, figure1):
        from repro.policy import AccessControlEngine, PolicyStore

        store = PolicyStore()
        store.share("Alice", "res")
        store.allow("res", list(scenario("q1-colleagues-of-friends").expressions))
        engine = AccessControlEngine(figure1, store)
        assert engine.authorized_audience("res") == {"Alice", "Fred"}

    def test_worked_example_scenario(self, figure1):
        from repro.policy import AccessControlEngine, PolicyStore

        store = PolicyStore()
        store.share("Alice", "res")
        store.allow("res", list(scenario("friends-of-friends-parents").expressions))
        engine = AccessControlEngine(figure1, store)
        assert engine.authorized_audience("res") == {"Alice", "George"}
