#!/usr/bin/env python3
"""Public-API surface checker: the exported surface cannot drift silently.

Run from the repository root (CI runs it in the ``docs`` job):

    python tools/check_api.py            # verify against tools/api_surface.json
    python tools/check_api.py --update   # re-record an intentional change

The *surface* is what PR 5 declared stable:

* ``repro.__all__`` — every name the package exports;
* the public method signatures of :class:`repro.GraphService` (parameter
  names, kinds, and whether each has a default — default *values* are left
  out so their reprs cannot churn across Python versions);
* the field lists of the query and result dataclasses
  (:class:`ReachQuery` ... :class:`BulkAccessResult`) and of
  :class:`ExecutionPlan` / :class:`BackendEstimate`.

The snapshot lives in ``tools/api_surface.json``.  A mismatch exits
non-zero with a unified diff: either the change is accidental (fix the
code) or intentional (run ``--update`` and commit the new snapshot — the
diff then documents the surface change in review).
"""

from __future__ import annotations

import dataclasses
import difflib
import inspect
import json
import sys
from pathlib import Path
from typing import Dict, List

REPO = Path(__file__).resolve().parent.parent
SNAPSHOT = REPO / "tools" / "api_surface.json"

sys.path.insert(0, str(REPO / "src"))

import repro  # noqa: E402  (path bootstrap above)
from repro.service import facade, planner, queries, results  # noqa: E402
from repro.serving import session as serving_session  # noqa: E402

#: The dataclasses whose field lists are part of the stable surface.
DATACLASSES = [
    queries.ReachQuery,
    queries.AudienceQuery,
    queries.AccessQuery,
    queries.BulkAccessQuery,
    results.PlannedResult,
    results.ReachResult,
    results.AudienceResult,
    results.AccessResult,
    results.BulkAccessResult,
    results.BulkReachResult,
    planner.ExecutionPlan,
    planner.BackendEstimate,
    serving_session.ServedReach,
    serving_session.ServedAudience,
    serving_session.ServedAccess,
]


def _signature_of(function) -> List[Dict[str, object]]:
    rows = []
    for name, parameter in inspect.signature(function).parameters.items():
        if name == "self":
            continue
        rows.append(
            {
                "name": name,
                "kind": parameter.kind.name,
                "has_default": parameter.default is not inspect.Parameter.empty,
            }
        )
    return rows


def build_surface() -> Dict[str, object]:
    """Collect the current surface from the live package."""
    service_methods = {
        name: _signature_of(member)
        for name, member in sorted(vars(facade.GraphService).items())
        if not name.startswith("_") and callable(member)
    }
    service_properties = sorted(
        name
        for name, member in vars(facade.GraphService).items()
        if not name.startswith("_") and isinstance(member, property)
    )
    dataclass_fields = {
        cls.__name__: [
            {
                "name": field.name,
                "has_default": (
                    field.default is not dataclasses.MISSING
                    or field.default_factory is not dataclasses.MISSING
                ),
            }
            for field in dataclasses.fields(cls)
        ]
        for cls in DATACLASSES
    }
    return {
        "all": sorted(repro.__all__),
        "graph_service_methods": service_methods,
        "graph_service_properties": service_properties,
        "dataclasses": dataclass_fields,
    }


def render(surface: Dict[str, object]) -> str:
    return json.dumps(surface, indent=2, sort_keys=True) + "\n"


def main(argv: List[str]) -> int:
    surface = build_surface()
    rendered = render(surface)
    if "--update" in argv:
        SNAPSHOT.write_text(rendered, encoding="utf-8")
        try:
            shown = SNAPSHOT.relative_to(REPO)
        except ValueError:  # snapshot redirected outside the repo (tests)
            shown = SNAPSHOT
        print(f"check_api: snapshot updated ({shown})")
        return 0
    if not SNAPSHOT.exists():
        print(
            "check_api: no committed snapshot; run `python tools/check_api.py "
            "--update` and commit tools/api_surface.json",
            file=sys.stderr,
        )
        return 1
    committed = SNAPSHOT.read_text(encoding="utf-8")
    if committed == rendered:
        exported = len(surface["all"])
        methods = len(surface["graph_service_methods"])
        print(
            f"check_api: surface matches the snapshot "
            f"({exported} exports, {methods} GraphService methods)"
        )
        return 0
    diff = difflib.unified_diff(
        committed.splitlines(keepends=True),
        rendered.splitlines(keepends=True),
        fromfile="tools/api_surface.json (committed)",
        tofile="tools/api_surface.json (current code)",
    )
    sys.stderr.writelines(diff)
    print(
        "check_api: the exported API surface drifted from the committed "
        "snapshot — fix the accidental break, or record the intentional "
        "change with `python tools/check_api.py --update`",
        file=sys.stderr,
    )
    return 1


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
