#!/usr/bin/env python3
"""Documentation checker: links resolve, embedded code compiles.

Run from anywhere (CI runs it from the repository root):

    python tools/check_docs.py

Two checks over ``README.md`` and every markdown file under ``docs/``:

1. **Links** — every relative markdown link target (``[text](path)`` /
   ``[text](path#anchor)``) must name an existing file or directory,
   resolved against the linking document.  External schemes
   (``http(s)://``, ``mailto:``) and pure in-page anchors (``#...``) are
   skipped.
2. **Snippets** — every fenced ```` ```python ```` block is extracted into
   a scratch directory and byte-compiled with :mod:`compileall`, so the
   documentation's code examples cannot rot into syntax errors.  Snippets
   are *compiled*, not executed: they may reference free variables, but
   they must parse.

Exits non-zero (listing every failure) when either check fails.
"""

from __future__ import annotations

import compileall
import re
import sys
import tempfile
from pathlib import Path
from typing import List

REPO = Path(__file__).resolve().parent.parent

#: ``[text](target)`` — target captured up to the first whitespace or ``)``.
LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")

#: Fenced python blocks; the fence language tag must be exactly ``python``.
FENCE = re.compile(r"^```python\s*\n(.*?)^```", re.DOTALL | re.MULTILINE)

EXTERNAL_PREFIXES = ("http://", "https://", "mailto:", "ftp://")


def documentation_files() -> List[Path]:
    files = [REPO / "README.md"]
    files.extend(sorted((REPO / "docs").glob("**/*.md")))
    return [path for path in files if path.exists()]


def check_links(documents: List[Path]) -> List[str]:
    failures = []
    for document in documents:
        text = document.read_text(encoding="utf-8")
        for match in LINK.finditer(text):
            target = match.group(1)
            if target.startswith(EXTERNAL_PREFIXES) or target.startswith("#"):
                continue
            path_part = target.split("#", 1)[0]
            if not path_part:
                continue
            resolved = (document.parent / path_part).resolve()
            if not resolved.exists():
                failures.append(
                    f"{document.relative_to(REPO)}: broken link {target!r} "
                    f"(resolved to {resolved})"
                )
    return failures


def extract_snippets(documents: List[Path], destination: Path) -> int:
    count = 0
    for document in documents:
        text = document.read_text(encoding="utf-8")
        stem = document.relative_to(REPO).as_posix().replace("/", "_").replace(".md", "")
        for index, match in enumerate(FENCE.finditer(text)):
            (destination / f"{stem}_snippet_{index}.py").write_text(
                match.group(1), encoding="utf-8"
            )
            count += 1
    return count


def main() -> int:
    documents = documentation_files()
    if not documents:
        print("check_docs: no documentation files found", file=sys.stderr)
        return 1
    failures = check_links(documents)
    for failure in failures:
        print(f"check_docs: {failure}", file=sys.stderr)

    with tempfile.TemporaryDirectory(prefix="doc-snippets-") as scratch:
        destination = Path(scratch)
        count = extract_snippets(documents, destination)
        compiled = compileall.compile_dir(str(destination), quiet=1)
        if not compiled:
            failures.append("one or more embedded python snippets failed to compile")
            print(
                "check_docs: snippet compilation failed (see compileall output above)",
                file=sys.stderr,
            )

    print(
        f"check_docs: {len(documents)} documents, {count} python snippets, "
        f"{len(failures)} failure(s)"
    )
    return 1 if failures else 0


if __name__ == "__main__":
    sys.exit(main())
